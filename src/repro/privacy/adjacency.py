"""Adjacency relations: what "neighbouring datasets" means.

Differential privacy is always stated relative to an adjacency relation over
datasets.  The paper works with two:

* **individual adjacency** (Definition 1/2) — datasets differing in one
  record; and
* **group-level adjacency** (Definition 3/4) — datasets differing in one
  whole group ``Gi`` of a fixed partition of the universe.

For bipartite association graphs a "record" can be read as an association
(edge) or as an entity (node together with all its associations); both graph
variants are provided because the two lead to different sensitivities for the
same query, and the baselines use the edge variant.
"""

from __future__ import annotations

import abc
from typing import Hashable, Optional

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.partition import Partition

Element = Hashable


class AdjacencyRelation(abc.ABC):
    """Base class for adjacency relations.

    An adjacency relation answers two questions:

    * :meth:`unit` — a human-readable name of the protected unit;
    * :meth:`count_query_sensitivity` — how much the global
      association-count query can change between two adjacent datasets
      (the quantity additive-noise mechanisms must be calibrated to).
    """

    @abc.abstractmethod
    def unit(self) -> str:
        """Name of the protected unit (e.g. ``"association"``, ``"group"``)."""

    @abc.abstractmethod
    def count_query_sensitivity(self, graph: BipartiteGraph) -> float:
        """Worst-case change of the association count between adjacent datasets."""

    def describe(self) -> str:
        """One-line description used in guarantee certificates."""
        return f"{type(self).__name__}(unit={self.unit()!r})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class IndividualAdjacency(AdjacencyRelation):
    """Record-level adjacency: datasets differ in a single association.

    This is the classical Definition 1 applied to association data where each
    record is one (left, right) association.  The count query changes by at
    most 1 between adjacent datasets regardless of the graph.
    """

    def unit(self) -> str:
        return "association"

    def count_query_sensitivity(self, graph: BipartiteGraph) -> float:
        return 1.0


class EdgeAdjacency(IndividualAdjacency):
    """Alias of :class:`IndividualAdjacency` using graph terminology."""

    def unit(self) -> str:
        return "edge"


class NodeAdjacency(AdjacencyRelation):
    """Entity-level adjacency: datasets differ in one node and all its associations.

    The count query can change by the degree of the node, so its sensitivity
    is the maximum degree (optionally clamped by ``degree_bound`` when the
    publisher enforces a degree cap before release).
    """

    def __init__(self, degree_bound: Optional[int] = None):
        if degree_bound is not None and degree_bound <= 0:
            raise ValidationError(f"degree_bound must be positive, got {degree_bound}")
        self.degree_bound = degree_bound

    def unit(self) -> str:
        return "node"

    def count_query_sensitivity(self, graph: BipartiteGraph) -> float:
        max_degree = 0
        for node in graph.nodes():
            max_degree = max(max_degree, graph.degree(node))
        if self.degree_bound is not None:
            return float(min(max_degree, self.degree_bound)) if max_degree else float(self.degree_bound)
        return float(max_degree) if max_degree else 1.0


class GroupAdjacency(AdjacencyRelation):
    """Group-level adjacency (paper Definition 3): datasets differ in one group.

    Removing a group removes every node in the group and every association
    incident to those nodes, so the count query can change by the largest
    number of associations any single group touches.

    Parameters
    ----------
    partition:
        The fixed partition ``G = {G1, ..., Gn}`` of the node universe that
        group privacy is defined over (one level of the hierarchy).
    """

    def __init__(self, partition: Partition):
        if not isinstance(partition, Partition):
            raise ValidationError(f"partition must be a Partition, got {type(partition).__name__}")
        self.partition = partition

    def unit(self) -> str:
        return "group"

    def count_query_sensitivity(self, graph: BipartiteGraph) -> float:
        worst = 0
        for group in self.partition.groups():
            incident = graph.associations_incident_to(group.members)
            worst = max(worst, incident)
        return float(worst) if worst else 1.0

    def max_group_size(self) -> int:
        """Largest group size in the underlying partition."""
        return self.partition.max_group_size()

    def describe(self) -> str:
        return (
            f"GroupAdjacency(groups={self.partition.num_groups()}, "
            f"max_group_size={self.partition.max_group_size()})"
        )
