"""Privacy definitions: adjacency relations, sensitivities, guarantees.

This package encodes the paper's Section II formally:

* :mod:`repro.privacy.adjacency` — the adjacency relations (individual-level,
  group-level, and the node/edge graph variants) that define *what* is being
  protected;
* :mod:`repro.privacy.sensitivity` — sensitivity of association-count queries
  under each relation (the quantity mechanisms must be calibrated to);
* :mod:`repro.privacy.guarantees` — ``(epsilon, delta)`` guarantee records
  attached to releases;
* :mod:`repro.privacy.conversion` — the classic lemma converting an
  individual-DP guarantee into a group-DP guarantee for groups of bounded
  size (and the reverse direction used by the naive baseline).
"""

from repro.privacy.adjacency import (
    AdjacencyRelation,
    EdgeAdjacency,
    GroupAdjacency,
    IndividualAdjacency,
    NodeAdjacency,
)
from repro.privacy.sensitivity import (
    association_count_sensitivity,
    group_count_sensitivity,
    group_workload_l1_sensitivity,
    group_workload_l2_sensitivity,
    individual_count_sensitivity,
    node_count_sensitivity,
)
from repro.privacy.guarantees import (
    GroupPrivacyGuarantee,
    IndividualPrivacyGuarantee,
    PrivacyGuarantee,
    PrivacyUnit,
)
from repro.privacy.conversion import (
    group_guarantee_from_individual,
    individual_budget_for_group_target,
)
from repro.privacy.audit import AuditResult, audit_count_release, audit_scalar_mechanism

__all__ = [
    "AdjacencyRelation",
    "EdgeAdjacency",
    "GroupAdjacency",
    "IndividualAdjacency",
    "NodeAdjacency",
    "association_count_sensitivity",
    "group_count_sensitivity",
    "group_workload_l1_sensitivity",
    "group_workload_l2_sensitivity",
    "individual_count_sensitivity",
    "node_count_sensitivity",
    "GroupPrivacyGuarantee",
    "IndividualPrivacyGuarantee",
    "PrivacyGuarantee",
    "PrivacyUnit",
    "group_guarantee_from_individual",
    "individual_budget_for_group_target",
    "AuditResult",
    "audit_count_release",
    "audit_scalar_mechanism",
]
