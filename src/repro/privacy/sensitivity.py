"""Sensitivity computations for association-count workloads.

Additive-noise mechanisms need the L1 (Laplace/geometric) or L2 (Gaussian)
sensitivity of the query under the adjacency relation being protected.  The
functions here compute those quantities for:

* the paper's headline query — "what is the number of associations in the
  dataset?" — under individual, node and group adjacency; and
* the per-group count *workload* — the vector of induced-subgraph association
  counts, one per group of a partition — which the extended release supports.

Group-level sensitivities are *data- and partition-dependent*: they are
computed from the published grouping, exactly as the paper's pipeline does
(the grouping is itself produced under differential privacy in phase 1, so
using it to calibrate phase-2 noise is standard post-processing of a private
structure plus a fresh mechanism invocation).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Optional

from repro.exceptions import SensitivityError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.partition import Partition

Node = Hashable


def individual_count_sensitivity() -> float:
    """Sensitivity of the global association count under individual adjacency.

    Adding or removing one association changes the count by exactly 1.
    """
    return 1.0


def node_count_sensitivity(graph: BipartiteGraph, degree_bound: Optional[int] = None) -> float:
    """Sensitivity of the global count under node adjacency (max degree)."""
    arrays = graph.cached_arrays()
    if arrays is not None:
        max_degree = int(arrays.degrees.max()) if arrays.degrees.size else 0
    else:
        max_degree = 0
        for node in graph.nodes():
            max_degree = max(max_degree, graph.degree(node))
    if degree_bound is not None:
        max_degree = min(max_degree, degree_bound) if max_degree else degree_bound
    return float(max_degree) if max_degree else 1.0


def group_count_sensitivity(graph: BipartiteGraph, partition: Partition) -> float:
    """Sensitivity of the global association count under group adjacency.

    Removing one group ``Gi`` removes every association incident to a node of
    ``Gi``; the sensitivity is therefore the maximum, over groups, of the
    number of associations incident to the group.
    """
    if partition.num_groups() == 0:
        raise SensitivityError("partition has no groups")
    arrays = graph.cached_arrays()
    if arrays is not None:
        worst = int(arrays.incident_counts(partition).max(initial=0))
        return float(worst) if worst else 1.0
    worst = 0
    for group in partition.groups():
        worst = max(worst, graph.associations_incident_to(group.members))
    return float(worst) if worst else 1.0


def per_group_incident_counts(graph: BipartiteGraph, partition: Partition) -> Dict[str, int]:
    """Number of associations incident to each group of ``partition``."""
    arrays = graph.cached_arrays()
    if arrays is not None:
        counts = arrays.incident_counts(partition)
        return {
            group.group_id: int(counts[i]) for i, group in enumerate(partition.groups())
        }
    return {
        group.group_id: graph.associations_incident_to(group.members)
        for group in partition.groups()
    }


def group_workload_l1_sensitivity(graph: BipartiteGraph, partition: Partition) -> float:
    """L1 sensitivity of the per-group *induced* count workload under group adjacency.

    The workload releases, for every group ``H`` of the partition, the number
    of associations with **both** endpoints inside ``H``.  Removing a group
    ``Gi`` zeroes its own coordinate (a change equal to its induced count) and
    leaves every other coordinate untouched, because an association counted
    for ``H != Gi`` has both endpoints in ``H`` and therefore none in ``Gi``.
    The L1 sensitivity is hence the largest induced count of any group.
    """
    if partition.num_groups() == 0:
        raise SensitivityError("partition has no groups")
    arrays = graph.cached_arrays()
    if arrays is not None:
        worst = int(arrays.induced_counts(partition).max(initial=0))
        return float(worst) if worst else 1.0
    from repro.graphs.subgraphs import subgraph_association_count

    worst = 0
    for group in partition.groups():
        worst = max(worst, subgraph_association_count(graph, group.members))
    return float(worst) if worst else 1.0


def group_workload_l2_sensitivity(graph: BipartiteGraph, partition: Partition) -> float:
    """L2 sensitivity of the per-group induced count workload under group adjacency.

    Only one coordinate changes between group-adjacent datasets (see
    :func:`group_workload_l1_sensitivity`), so the L2 and L1 sensitivities
    coincide.
    """
    return group_workload_l1_sensitivity(graph, partition)


def cross_level_sensitivities(
    graph: BipartiteGraph, partitions: Dict[int, Partition]
) -> Dict[int, float]:
    """Global-count sensitivity per hierarchy level.

    Convenience helper used by the disclosure pipeline and the benchmarks:
    maps ``level -> group_count_sensitivity(graph, partition_at_level)``.
    """
    return {level: group_count_sensitivity(graph, partition) for level, partition in partitions.items()}


def scale_sensitivity(base: float, factor: float) -> float:
    """Multiply a sensitivity by a factor, validating the result.

    Used by the naive group-DP baseline, which scales the individual
    sensitivity by the maximum group size instead of measuring the actual
    association mass of groups.
    """
    if base <= 0 or factor <= 0:
        raise SensitivityError(f"sensitivities must be positive (base={base}, factor={factor})")
    result = base * factor
    if math.isinf(result) or math.isnan(result):
        raise SensitivityError(f"scaled sensitivity is not finite: {result}")
    return result


def association_count_sensitivity(
    graph: BipartiteGraph,
    adjacency: str = "individual",
    partition: Optional[Partition] = None,
    degree_bound: Optional[int] = None,
) -> float:
    """Dispatch helper: sensitivity of the global count under a named adjacency.

    Parameters
    ----------
    graph:
        The association graph.
    adjacency:
        ``"individual"`` (one association), ``"node"`` (one entity and its
        associations) or ``"group"`` (one group of a partition).
    partition:
        Required when ``adjacency == "group"``.
    degree_bound:
        Optional degree cap for node adjacency.
    """
    if adjacency == "individual":
        return individual_count_sensitivity()
    if adjacency == "node":
        return node_count_sensitivity(graph, degree_bound=degree_bound)
    if adjacency == "group":
        if partition is None:
            raise SensitivityError("group adjacency requires a partition")
        return group_count_sensitivity(graph, partition)
    raise SensitivityError(f"unknown adjacency {adjacency!r}")
