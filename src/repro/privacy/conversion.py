"""Conversions between individual-level and group-level guarantees.

The classical *group privacy* lemma states that an ``epsilon``-DP mechanism
(individual adjacency) is ``k * epsilon``-DP for groups of at most ``k``
records, and an ``(epsilon, delta)``-DP mechanism is
``(k * epsilon, k * e^{(k-1) * epsilon} * delta)``-DP for such groups
(Dwork & Roth, 2014, Theorem 2.2 and its approximate-DP analogue).

These conversions are what the **naive group-DP baseline** uses: run an
individual-DP mechanism and invoke the lemma, which forces the individual
budget down by a factor of the group size.  The paper's approach instead
calibrates noise directly to the group-level sensitivity, which is never
worse and is much better when a group's association mass is far below
``group size x max degree``.
"""

from __future__ import annotations

import math

from repro.privacy.guarantees import GroupPrivacyGuarantee, PrivacyGuarantee, PrivacyUnit
from repro.utils.validation import check_positive, check_positive_int


def group_guarantee_from_individual(
    guarantee: PrivacyGuarantee, group_size: int, level: int = None
) -> GroupPrivacyGuarantee:
    """Lift an individual-DP guarantee to groups of at most ``group_size`` records.

    Parameters
    ----------
    guarantee:
        The individual-level guarantee.
    group_size:
        Upper bound ``k`` on the number of records in any group.
    level:
        Optional hierarchy level to record on the resulting guarantee.
    """
    k = check_positive_int(group_size, "group_size")
    epsilon = guarantee.epsilon * k
    if guarantee.delta == 0.0:
        delta = 0.0
    elif math.isinf(guarantee.epsilon):
        delta = 1.0
    else:
        # Compute k * e^{(k-1) eps} * delta in log space: for realistic group
        # sizes the exponential overflows a float long before the product
        # drops below 1, and the lemma caps delta at 1 anyway.
        log_delta = math.log(k) + (k - 1) * guarantee.epsilon + math.log(guarantee.delta)
        delta = 1.0 if log_delta >= 0.0 else math.exp(log_delta)
    return GroupPrivacyGuarantee(
        epsilon=epsilon,
        delta=delta,
        unit=PrivacyUnit.GROUP,
        description=(
            f"derived from individual guarantee (epsilon={guarantee.epsilon}, "
            f"delta={guarantee.delta}) via the group-privacy lemma with k={k}"
        ),
        level=level,
        max_group_size=k,
    )


def individual_budget_for_group_target(
    group_epsilon: float, group_size: int
) -> float:
    """Individual budget needed so the lemma yields a ``group_epsilon`` guarantee.

    Simply ``group_epsilon / group_size`` — the inverse direction of
    :func:`group_guarantee_from_individual` for pure DP.  This is the budget
    the naive baseline must run its individual-DP mechanism at, and it shrinks
    linearly with the group size, which is why the baseline's utility
    collapses for coarse group levels.
    """
    group_epsilon = check_positive(group_epsilon, "group_epsilon")
    group_size = check_positive_int(group_size, "group_size")
    return group_epsilon / group_size
