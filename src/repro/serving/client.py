"""Minimal stdlib client for the serving API (tests, examples, benchmarks).

Deliberately tiny — two functions over :mod:`urllib.request` — so consumers
of a served release need nothing beyond the standard library either (the
optional retry support reuses :class:`~repro.execution.retry.RetryPolicy`,
which is itself stdlib-only).

Pass ``retry=RetryPolicy(...)`` to either function and the request rides
out transient failures: transport errors (connection refused mid-restart,
timeouts) and ``503`` load-shedding responses are retried with the policy's
deterministic backoff, so a client survives a server that is briefly
overloaded or restarting.  Definitive statuses (404, 403, 500 …) are never
retried.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional, Tuple

from repro.exceptions import ServingError
from repro.execution.retry import RetryPolicy


def _http_get_once(url: str, timeout: float) -> Tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()
    except urllib.error.URLError as error:
        raise ServingError(f"GET {url} failed: {error.reason}") from error


def http_get(
    url: str, timeout: float = 10.0, retry: Optional[RetryPolicy] = None
) -> Tuple[int, bytes]:
    """``GET url`` and return ``(status, body bytes)``.

    Non-2xx statuses are returned, not raised, so callers can assert on the
    API's error mapping; only transport failures (connection refused, DNS,
    timeout) raise :class:`ServingError`.

    With ``retry``, transport failures and ``503`` responses (the server's
    load-shedding and handler-timeout answers) are retried up to the
    policy's attempt budget with its deterministic backoff; the final
    attempt's outcome is returned (or raised) unchanged.
    """
    if retry is None:
        return _http_get_once(url, timeout)
    attempt = 0
    while True:
        attempt += 1
        try:
            status, body = _http_get_once(url, timeout)
        except ServingError:
            if attempt >= retry.max_attempts:
                raise
            time.sleep(retry.delay_for(attempt + 1, key=url))
            continue
        if status == 503 and attempt < retry.max_attempts:
            time.sleep(retry.delay_for(attempt + 1, key=url))
            continue
        return status, body


def fetch_json(
    base_url: str,
    path: str = "",
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
) -> dict:
    """``GET base_url + path``, require a 200, and parse the JSON body."""
    url = base_url.rstrip("/") + path
    status, body = http_get(url, timeout=timeout, retry=retry)
    if status != 200:
        raise ServingError(
            f"GET {url} returned {status}: {body.decode('utf-8', 'replace').strip()}",
            status=status,
            body=body,
        )
    return json.loads(body.decode("utf-8"))
