"""Minimal stdlib client for the serving API (tests, examples, benchmarks).

Deliberately tiny — a few functions over :mod:`urllib.request` — so consumers
of a served release need nothing beyond the standard library either (the
optional retry support reuses :class:`~repro.execution.retry.RetryPolicy`,
which is itself stdlib-only).

The client speaks the server's caching dialect transparently:

* every request advertises ``Accept-Encoding: gzip`` (disable with
  ``accept_gzip=False``) and a gzip-encoded body is decoded before it is
  returned, so callers always see the identity bytes;
* a response claiming an encoding the client does not implement raises
  :class:`ServingError` instead of handing back undecodable bytes;
* bodies are capped at ``max_body_bytes`` — on the wire *and* after
  decompression — so a misbehaving (or gzip-bombing) server cannot balloon
  client memory;
* pass ``etag=`` to revalidate: the request carries ``If-None-Match`` and a
  ``304`` comes back as status 304 with an empty body.

Pass ``retry=RetryPolicy(...)`` and the request rides out transient
failures: transport errors (connection refused mid-restart, timeouts) and
``503`` load-shedding responses are retried with the policy's deterministic
backoff, so a client survives a server that is briefly overloaded or
restarting.  Definitive statuses (404, 403, 500 …) are never retried.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import zlib
from typing import Dict, NamedTuple, Optional, Tuple

from repro.exceptions import ServingError
from repro.execution.retry import RetryPolicy

#: Default cap on a response body (identity bytes), on and off the wire.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Read granularity for the capped body reader.
_CHUNK = 65536

#: Content encodings the client can decode ("" / identity = passthrough).
_DECODABLE = ("", "identity", "gzip", "x-gzip")


class ServedResponse(NamedTuple):
    """One HTTP response, already decoded: status, identity body, headers."""

    status: int
    body: bytes
    headers: Dict[str, str]

    @property
    def etag(self) -> Optional[str]:
        """The response's ``ETag`` (pass back via ``etag=`` to revalidate)."""
        return self.headers.get("etag")


def _read_capped(response, max_body_bytes: int, url: str) -> bytes:
    """Read the raw body, refusing to buffer more than ``max_body_bytes``."""
    chunks = []
    read = 0
    while True:
        chunk = response.read(_CHUNK)
        if not chunk:
            return b"".join(chunks)
        read += len(chunk)
        if read > max_body_bytes:
            raise ServingError(
                f"GET {url} exceeded max_body_bytes={max_body_bytes} on the wire"
            )
        chunks.append(chunk)


def _decode_body(raw: bytes, encoding: str, max_body_bytes: int, url: str) -> bytes:
    """Undo the transfer's ``Content-Encoding``, still honouring the cap.

    gzip is inflated incrementally with a decompressed-size bound, so a
    gzip bomb fails the cap instead of exhausting memory; any encoding
    outside :data:`_DECODABLE` is an error, not silently-returned garbage.
    """
    encoding = encoding.strip().lower()
    if encoding not in _DECODABLE:
        raise ServingError(
            f"GET {url} answered with unsupported Content-Encoding {encoding!r}"
        )
    if encoding in ("", "identity") or not raw:
        return raw
    decoder = zlib.decompressobj(16 + zlib.MAX_WBITS)  # gzip-wrapped deflate
    try:
        body = decoder.decompress(raw, max_body_bytes + 1)
    except zlib.error as error:
        raise ServingError(f"GET {url} sent an undecodable gzip body: {error}") from error
    if len(body) > max_body_bytes or decoder.unconsumed_tail:
        raise ServingError(
            f"GET {url} exceeded max_body_bytes={max_body_bytes} after gzip decoding"
        )
    return body


def _http_get_once(
    url: str,
    timeout: float,
    etag: Optional[str],
    accept_gzip: bool,
    max_body_bytes: int,
) -> ServedResponse:
    headers = {"Accept-Encoding": "gzip" if accept_gzip else "identity"}
    if etag is not None:
        headers["If-None-Match"] = etag
    request = urllib.request.Request(url, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = _read_capped(response, max_body_bytes, url)
            status = response.status
            header_map = {name.lower(): value for name, value in response.headers.items()}
    except urllib.error.HTTPError as error:
        raw = _read_capped(error, max_body_bytes, url)
        status = error.code
        header_map = {name.lower(): value for name, value in error.headers.items()}
    except urllib.error.URLError as error:
        raise ServingError(f"GET {url} failed: {error.reason}") from error
    body = _decode_body(raw, header_map.get("content-encoding", ""), max_body_bytes, url)
    return ServedResponse(status, body, header_map)


def http_get_response(
    url: str,
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
    etag: Optional[str] = None,
    accept_gzip: bool = True,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> ServedResponse:
    """``GET url`` and return the full :class:`ServedResponse`.

    The body is always identity bytes (gzip transfers are decoded), capped
    at ``max_body_bytes``.  With ``etag``, the request revalidates via
    ``If-None-Match`` and a not-modified answer is status ``304`` with an
    empty body — read the fresh ``ETag`` off :attr:`ServedResponse.etag`.

    Non-2xx statuses are returned, not raised, so callers can assert on the
    API's error mapping; only transport failures (connection refused, DNS,
    timeout) and undecodable/oversized bodies raise :class:`ServingError`.

    With ``retry``, transport failures and ``503`` responses (the server's
    load-shedding and handler-timeout answers) are retried up to the
    policy's attempt budget with its deterministic backoff; the final
    attempt's outcome is returned (or raised) unchanged.
    """
    if retry is None:
        return _http_get_once(url, timeout, etag, accept_gzip, max_body_bytes)
    attempt = 0
    while True:
        attempt += 1
        try:
            response = _http_get_once(url, timeout, etag, accept_gzip, max_body_bytes)
        except ServingError:
            if attempt >= retry.max_attempts:
                raise
            time.sleep(retry.delay_for(attempt + 1, key=url))
            continue
        if response.status == 503 and attempt < retry.max_attempts:
            time.sleep(retry.delay_for(attempt + 1, key=url))
            continue
        return response


def http_get(
    url: str,
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
    etag: Optional[str] = None,
    accept_gzip: bool = True,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Tuple[int, bytes]:
    """``GET url`` and return ``(status, body bytes)``.

    The historical two-tuple front of :func:`http_get_response` — same
    decoding, capping, revalidation and retry semantics, minus the headers.
    """
    response = http_get_response(
        url,
        timeout=timeout,
        retry=retry,
        etag=etag,
        accept_gzip=accept_gzip,
        max_body_bytes=max_body_bytes,
    )
    return response.status, response.body


def fetch_json(
    base_url: str,
    path: str = "",
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
) -> dict:
    """``GET base_url + path``, require a 200, and parse the JSON body."""
    url = base_url.rstrip("/") + path
    status, body = http_get(url, timeout=timeout, retry=retry)
    if status != 200:
        raise ServingError(
            f"GET {url} returned {status}: {body.decode('utf-8', 'replace').strip()}",
            status=status,
            body=body,
        )
    return json.loads(body.decode("utf-8"))
