"""Minimal stdlib client for the serving API (tests, examples, benchmarks).

Deliberately tiny — two functions over :mod:`urllib.request` — so consumers
of a served release need nothing beyond the standard library either.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Tuple

from repro.exceptions import ServingError


def http_get(url: str, timeout: float = 10.0) -> Tuple[int, bytes]:
    """``GET url`` and return ``(status, body bytes)``.

    Non-2xx statuses are returned, not raised, so callers can assert on the
    API's error mapping; only transport failures (connection refused, DNS,
    timeout) raise :class:`ServingError`.
    """
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()
    except urllib.error.URLError as error:
        raise ServingError(f"GET {url} failed: {error.reason}") from error


def fetch_json(base_url: str, path: str = "", timeout: float = 10.0) -> dict:
    """``GET base_url + path``, require a 200, and parse the JSON body."""
    url = base_url.rstrip("/") + path
    status, body = http_get(url, timeout=timeout)
    if status != 200:
        raise ServingError(
            f"GET {url} returned {status}: {body.decode('utf-8', 'replace').strip()}",
            status=status,
            body=body,
        )
    return json.loads(body.decode("utf-8"))
