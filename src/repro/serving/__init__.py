"""Read-only HTTP serving of stored disclosure releases.

The paper's deployment model is *disclose once, serve many*: the privacy
budget is spent when a release is produced, after which the multi-level
artefact can be handed to any number of consumers, each receiving exactly
the information level their access privilege entitles them to.  This package
is the serving half of that model — a dependency-light HTTP API (standard
library ``http.server`` only, no web framework) that loads releases from a
:class:`~repro.core.store.ReleaseStore`, resolves a caller's role through
:meth:`~repro.core.access.AccessPolicy.view_for`, and returns per-level
views as JSON.

No disclosure or pipeline code is imported anywhere in this package: the
request path can, by construction, never touch the privacy budget
(``tests/test_serving.py`` enforces this with an import audit).

Start a server from Python::

    from repro.serving import ReleaseServer
    server = ReleaseServer(store, policy, port=0).start()
    ...
    server.stop()

or from the command line with ``repro serve --store DIR --policy FILE``.
"""

from repro.exceptions import ServingError
from repro.serving.client import (
    DEFAULT_MAX_BODY_BYTES,
    ServedResponse,
    fetch_json,
    http_get,
    http_get_response,
)
from repro.serving.fleet import ServerFleet, format_config_line, reuseport_available
from repro.serving.respcache import (
    DEFAULT_RESPONSE_CACHE_SIZE,
    CachedResponse,
    ResponseCache,
    make_etag,
)
from repro.serving.server import (
    DEFAULT_CACHE_SIZE,
    ReleaseServer,
    ServingStats,
    create_server,
)
from repro.serving.staleness import StalenessIndex

__all__ = [
    "ReleaseServer",
    "ServerFleet",
    "ServingStats",
    "StalenessIndex",
    "ResponseCache",
    "CachedResponse",
    "ServedResponse",
    "create_server",
    "reuseport_available",
    "format_config_line",
    "make_etag",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_RESPONSE_CACHE_SIZE",
    "DEFAULT_MAX_BODY_BYTES",
    "http_get",
    "http_get_response",
    "fetch_json",
    "ServingError",
]
