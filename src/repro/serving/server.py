"""The read-only HTTP server over a :class:`~repro.core.store.ReleaseStore`.

Endpoints (all ``GET``, all JSON):

========================================  =====================================
``/``                                     endpoint directory
``/healthz``                              liveness + store/policy summary
``/releases``                             stored release keys
``/releases/<key>``                       release metadata and provenance
                                          (guarantees, noise scales, config —
                                          everything except the answers)
``/releases/<key>/roles``                 the roles the policy can resolve
``/releases/<key>/views/<role>``          the single per-level view the role
                                          is entitled to, resolved through
                                          :meth:`AccessPolicy.view_for`
========================================  =====================================

Error mapping: an unknown release key is ``404``, an unknown role (or a role
whose level cannot be served) is ``403``, a write verb is ``405``, and a
stored-but-corrupt artefact is ``500``.  Responses are canonical JSON
(sorted keys, two-space indent, trailing newline), so the same stored
release serialises byte-identically regardless of the store backend behind
the server.

The server is a stdlib :class:`~http.server.ThreadingHTTPServer` — one
thread per connection, no framework — and the request path only ever reads
from the store and applies the access policy.  Nothing here can spend
privacy budget: the disclosure pipeline is not imported.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import List, Optional, Tuple, Union
from urllib.parse import unquote, urlsplit

from repro.core.access import AccessPolicy
from repro.core.release import MultiLevelRelease
from repro.core.store import ReleaseStore
from repro.exceptions import AccessLevelError, ReleaseIntegrityError
from repro.utils.serialization import canonical_json_bytes as canonical_json
from repro.utils.serialization import from_json_file

PathLike = Union[str, Path]

#: Parsed releases kept hot in the store's read-through cache by default.
DEFAULT_CACHE_SIZE = 32


def _release_metadata(key: str, document: dict) -> dict:
    """Everything about a stored release except the answers themselves.

    Works directly off the stored document (answers still npz references),
    so serving metadata never reads or parses the answer arrays.
    """
    level_metadata = {}
    for level_key, level_doc in document["levels"].items():
        level_metadata[level_key] = {
            "guarantee": level_doc["guarantee"],
            "mechanism": level_doc["mechanism"],
            "noise_scale": level_doc["noise_scale"],
            "sensitivity": level_doc["sensitivity"],
            "queries": sorted(level_doc["answers"]),
        }
    return {
        "key": key,
        "dataset": document["dataset_name"],
        "levels": sorted(int(level) for level in document["levels"]),
        "level_metadata": level_metadata,
        "level_statistics": document.get("level_statistics", []),
        "specialization_cost": document.get("specialization_cost", {}),
        "config": document.get("config", {}),
    }


class _ReleaseHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the store/policy for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, store: ReleaseStore, policy: AccessPolicy, verbose: bool):
        self.store = store
        self.policy = policy
        self.verbose = verbose
        super().__init__(address, handler)


class ReleaseRequestHandler(BaseHTTPRequestHandler):
    """Routes one request; holds no state beyond the connection."""

    server_version = "repro-serving/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload, extra_headers=()) -> None:
        body = canonical_json(payload)
        self.send_response(status)
        for name, value in extra_headers:
            self.send_header(name, value)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"status": status, "error": message})

    def _drain_request_body(self) -> None:
        """Consume an unread request body so a keep-alive connection stays
        aligned on the next request line (chunked bodies close instead)."""
        if self.headers.get("Transfer-Encoding", "").lower() == "chunked":
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # Malformed header: the body length is unknowable, so the
            # connection cannot be re-aligned — answer, then close it.
            self.close_connection = True
            return
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                self.close_connection = True
                return
            length -= len(chunk)

    def _method_not_allowed(self) -> None:
        self._drain_request_body()
        self._send_json(
            405,
            {"status": 405, "error": "this API is read-only"},
            extra_headers=(("Allow", "GET, HEAD"),),
        )

    def do_POST(self) -> None:
        self._method_not_allowed()

    def do_PUT(self) -> None:
        self._method_not_allowed()

    def do_DELETE(self) -> None:
        self._method_not_allowed()

    def do_PATCH(self) -> None:
        self._method_not_allowed()

    def do_HEAD(self) -> None:
        # Same routing and headers as GET; _send_json suppresses the body,
        # so load-balancer probes (`curl -I /healthz`) see a real 200.
        self.do_GET()

    # -- routing ---------------------------------------------------------
    def do_GET(self) -> None:
        segments = [unquote(part) for part in urlsplit(self.path).path.split("/") if part]
        try:
            self._route(segments)
        except BrokenPipeError:  # pragma: no cover - client hung up
            pass
        except Exception as exc:  # noqa: BLE001 - a bug must not drop the connection
            try:
                self._send_error_json(500, f"internal error: {exc}")
            except Exception:  # pragma: no cover - response already in flight
                pass

    def _route(self, segments: List[str]) -> None:
        if not segments:
            return self._handle_index()
        if segments == ["healthz"]:
            return self._handle_health()
        if segments[0] != "releases":
            return self._send_error_json(404, f"unknown endpoint /{'/'.join(segments)}")
        if len(segments) == 1:
            return self._handle_list()
        key = segments[1]
        if len(segments) == 2:
            return self._handle_metadata(key)
        if len(segments) == 3 and segments[2] == "roles":
            return self._handle_roles(key)
        if len(segments) == 4 and segments[2] == "views":
            return self._handle_view(key, segments[3])
        return self._send_error_json(404, f"unknown endpoint /{'/'.join(segments)}")

    # -- endpoint handlers -------------------------------------------------
    def _handle_index(self) -> None:
        self._send_json(
            200,
            {
                "service": "repro release serving",
                "endpoints": [
                    "/healthz",
                    "/releases",
                    "/releases/<key>",
                    "/releases/<key>/roles",
                    "/releases/<key>/views/<role>",
                ],
            },
        )

    def _handle_health(self) -> None:
        store: ReleaseStore = self.server.store
        policy: AccessPolicy = self.server.policy
        self._send_json(
            200,
            {
                "status": "ok",
                "releases": len(store.keys()),
                "roles": policy.roles(),
                "cache": store.cache_info(),
            },
        )

    def _handle_list(self) -> None:
        self._send_json(200, {"releases": self.server.store.keys()})

    def _load_release(self, key: str) -> Optional[MultiLevelRelease]:
        """Load a release or answer the request with 404/500; None on failure."""
        store: ReleaseStore = self.server.store
        try:
            return store.load(key)
        except ReleaseIntegrityError as error:
            if not store.exists(key):
                self._send_error_json(404, f"no release stored under key {key!r}")
            else:
                self._send_error_json(500, f"stored release {key!r} cannot be served: {error}")
            return None

    def _handle_metadata(self, key: str) -> None:
        store: ReleaseStore = self.server.store
        try:
            document = store.load_document(key)
        except ReleaseIntegrityError as error:
            if not store.exists(key):
                self._send_error_json(404, f"no release stored under key {key!r}")
            else:
                self._send_error_json(500, f"stored release {key!r} cannot be served: {error}")
            return
        if document.get("level_view"):
            self._send_error_json(
                500, f"stored key {key!r} holds a single level view, not a release"
            )
            return
        self._send_json(200, _release_metadata(key, document))

    def _handle_roles(self, key: str) -> None:
        if not self.server.store.exists(key):
            return self._send_error_json(404, f"no release stored under key {key!r}")
        policy: AccessPolicy = self.server.policy
        roles = {
            role: {
                "level": policy.level_for(role),
                "information_level": policy.information_level(role).name,
            }
            for role in policy.roles()
        }
        self._send_json(200, {"key": key, "roles": roles})

    def _handle_view(self, key: str, role: str) -> None:
        release = self._load_release(key)
        if release is None:
            return
        policy: AccessPolicy = self.server.policy
        try:
            view = policy.view_for(role, release)
        except AccessLevelError as error:
            return self._send_error_json(403, f"role {role!r} cannot be served: {error}")
        self._send_json(
            200,
            {
                "key": key,
                "role": role,
                "information_level": policy.information_level(role).name,
                "dataset": release.dataset_name,
                "release": view.to_dict(),
            },
        )


class ReleaseServer:
    """A read-only HTTP server over a release store and an access policy.

    Parameters
    ----------
    store:
        The :class:`ReleaseStore` releases are served from.  Serving only
        ever reads; a publisher process populates the store separately.
    policy:
        Maps caller roles onto the information levels they may read.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` / :attr:`url`).
    verbose:
        Log one line per request to stderr (default quiet).

    Examples
    --------
    >>> server = ReleaseServer(store, policy, port=0).start()   # doctest: +SKIP
    >>> fetch_json(server.url, "/healthz")["status"]            # doctest: +SKIP
    'ok'
    >>> server.stop()                                           # doctest: +SKIP
    """

    def __init__(
        self,
        store: ReleaseStore,
        policy: AccessPolicy,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ):
        self.store = store
        self.policy = policy
        self._http = _ReleaseHTTPServer((host, port), ReleaseRequestHandler, store, policy, verbose)
        self._thread: Optional[threading.Thread] = None

    # -- address -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ReleaseServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serving", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and release the socket (idempotent)."""
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join()
            self._thread = None
        self._http.server_close()

    def serve_forever(self) -> None:
        """Blocking serve loop for the CLI (Ctrl-C returns cleanly)."""
        try:
            self._http.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._http.server_close()

    def __enter__(self) -> "ReleaseServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def create_server(
    store: Union[ReleaseStore, PathLike],
    policy: Union[AccessPolicy, PathLike],
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: int = DEFAULT_CACHE_SIZE,
    verbose: bool = False,
) -> ReleaseServer:
    """Build a :class:`ReleaseServer` from objects or from on-disk paths.

    ``store`` may be a store directory (opened with a read-through cache of
    ``cache_size`` releases) and ``policy`` a JSON file in the
    :meth:`AccessPolicy.to_dict` format — exactly what ``repro serve`` passes
    through from its command line.
    """
    if not isinstance(store, ReleaseStore):
        store = ReleaseStore(store, cache_size=cache_size)
    if not isinstance(policy, AccessPolicy):
        policy = AccessPolicy.from_dict(from_json_file(policy))
    return ReleaseServer(store, policy, host=host, port=port, verbose=verbose)
