"""The read-only HTTP server over a :class:`~repro.core.store.ReleaseStore`.

Endpoints (all ``GET``, all JSON):

========================================  =====================================
``/``                                     endpoint directory
``/healthz``                              liveness + store/policy summary
``/releases``                             stored release keys
``/releases/<key>``                       release metadata and provenance
                                          (guarantees, noise scales, config,
                                          refresh lineage and a ``staleness``
                                          verdict — everything except the
                                          answers)
``/releases/<key>/roles``                 the roles the policy can resolve
``/releases/<key>/views/<role>``          the single per-level view the role
                                          is entitled to, resolved through
                                          :meth:`AccessPolicy.view_for`
========================================  =====================================

Error mapping: an unknown release key is ``404``, an unknown role (or a role
whose level cannot be served) is ``403``, a write verb is ``405``, and a
stored-but-corrupt artefact is ``500``.  Responses are canonical JSON
(sorted keys, two-space indent, trailing newline), so the same stored
release serialises byte-identically regardless of the store backend behind
the server.

Fault tolerance: the server degrades instead of collapsing.

* ``max_in_flight`` bounds concurrently-handled requests; excess requests
  are *shed* with ``503`` + ``Retry-After`` instead of queueing without
  bound (``/healthz`` is exempt, so probes see through the overload).
* ``handler_timeout`` bounds one request's handler work; a stuck store read
  answers ``503`` instead of hanging the connection.
* A stored-but-corrupt artefact answers ``500`` once, then the key is
  *quarantined*: subsequent requests get a fast ``404`` with the corruption
  reason instead of re-reading (and re-failing on) the artefact.  The
  quarantine entry is pinned to the store's change fingerprint, so
  republishing the key clears it automatically.
* ``/healthz`` reports ``"degraded"`` (plus shed/timeout/backend-error
  counters and the quarantined keys) whenever releases are quarantined.

Hot-path response cache: per-release routes (``/releases/<key>...``) are
served from a :class:`~repro.serving.respcache.ResponseCache` — the
canonical JSON bytes (plus a precomputed gzip variant and a strong ``ETag``)
are built **once per store fingerprint** and replayed directly from memory,
so a warm cached ``GET`` performs zero JSON serialisation and zero store
reads.  Every hit is re-validated against the store's per-key change
fingerprint first, so a republished key is never served stale.  Clients
holding a body revalidate with ``If-None-Match`` and get an empty ``304``;
clients advertising ``Accept-Encoding: gzip`` get the compressed variant
with ``Content-Encoding: gzip`` (all cacheable responses carry
``Vary: Accept-Encoding``).  ``response_cache_size=0`` restores the
serialise-per-request behaviour; ``gzip_enabled=False`` disables content
negotiation while keeping the byte cache and ``304`` revalidation.

The server is a stdlib :class:`~http.server.ThreadingHTTPServer` — one
thread per connection, no framework — and the request path only ever reads
from the store and applies the access policy.  Nothing here can spend
privacy budget: the disclosure pipeline is not imported.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import unquote, urlsplit

from repro.core.access import AccessPolicy
from repro.core.store import ReleaseStore
from repro.exceptions import AccessLevelError, ReleaseIntegrityError, ValidationError
from repro.serving.respcache import (
    DEFAULT_RESPONSE_CACHE_SIZE,
    CachedResponse,
    ResponseCache,
)
from repro.serving.staleness import StalenessIndex
from repro.utils.serialization import canonical_json_bytes as canonical_json
from repro.utils.serialization import from_json_file

PathLike = Union[str, Path]

#: Parsed releases kept hot in the store's read-through cache by default.
DEFAULT_CACHE_SIZE = 32

#: ``Retry-After`` seconds sent with load-shedding 503 responses.
RETRY_AFTER_SECONDS = 1

#: A handler's response before it is written: (status, payload, headers).
Response = Tuple[int, dict, Tuple[Tuple[str, str], ...]]


class ServingStats:
    """Thread-safe degradation counters plus the corrupt-artefact quarantine.

    One instance lives on the HTTP server; handler threads record sheds,
    handler timeouts and backend errors through it, and ``/healthz`` renders
    its snapshot so operators see *how* the server is degraded, not just
    that it is.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.shed = 0
        self.handler_timeouts = 0
        self.backend_errors = 0
        self.etag_hits = 0
        self.gzip_responses = 0
        self.cache_invalidations = 0
        self._quarantine: Dict[str, Dict[str, Optional[str]]] = {}

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_handler_timeout(self) -> None:
        with self._lock:
            self.handler_timeouts += 1

    def record_etag_hit(self) -> None:
        """An ``If-None-Match`` revalidation answered with an empty 304."""
        with self._lock:
            self.etag_hits += 1

    def record_gzip_response(self) -> None:
        """A response body sent with ``Content-Encoding: gzip``."""
        with self._lock:
            self.gzip_responses += 1

    def record_cache_invalidation(self) -> None:
        """A cached response dropped because its store fingerprint went stale."""
        with self._lock:
            self.cache_invalidations += 1

    def quarantine(self, key: str, fingerprint: Optional[str], reason: str) -> None:
        """Mark ``key``'s stored artefact corrupt at ``fingerprint``."""
        with self._lock:
            self.backend_errors += 1
            self._quarantine[key] = {"fingerprint": fingerprint, "reason": reason}

    def quarantine_reason(self, key: str, fingerprint: Optional[str]) -> Optional[str]:
        """The recorded corruption reason, or ``None`` when not quarantined.

        An entry whose recorded fingerprint no longer matches the store's is
        dropped — the artefact changed (e.g. was republished), so the next
        read gets a fresh chance.
        """
        with self._lock:
            entry = self._quarantine.get(key)
            if entry is None:
                return None
            if entry["fingerprint"] != fingerprint:
                del self._quarantine[key]
                return None
            return entry["reason"]

    def snapshot(self) -> dict:
        """JSON-ready counters for ``/healthz``."""
        with self._lock:
            return {
                "shed": self.shed,
                "handler_timeouts": self.handler_timeouts,
                "backend_errors": self.backend_errors,
                "etag_hits": self.etag_hits,
                "gzip_responses": self.gzip_responses,
                "cache_invalidations": self.cache_invalidations,
                "quarantined": sorted(self._quarantine),
            }


def _release_metadata(key: str, document: dict) -> dict:
    """Everything about a stored release except the answers themselves.

    Works directly off the stored document (answers still npz references),
    so serving metadata never reads or parses the answer arrays.
    """
    level_metadata = {}
    for level_key, level_doc in document["levels"].items():
        level_metadata[level_key] = {
            "guarantee": level_doc["guarantee"],
            "mechanism": level_doc["mechanism"],
            "noise_scale": level_doc["noise_scale"],
            "sensitivity": level_doc["sensitivity"],
            "queries": sorted(level_doc["answers"]),
        }
    return {
        "key": key,
        "dataset": document["dataset_name"],
        "levels": sorted(int(level) for level in document["levels"]),
        "level_metadata": level_metadata,
        "level_statistics": document.get("level_statistics", []),
        "specialization_cost": document.get("specialization_cost", {}),
        "config": document.get("config", {}),
    }


class _ReleaseHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the store/policy for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        handler,
        store: ReleaseStore,
        policy: AccessPolicy,
        verbose: bool,
        max_in_flight: Optional[int] = None,
        handler_timeout: Optional[float] = None,
        response_cache_size: int = DEFAULT_RESPONSE_CACHE_SIZE,
        gzip_enabled: bool = True,
    ):
        self.store = store
        self.policy = policy
        self.verbose = verbose
        self.stats = ServingStats()
        self.limiter = (
            threading.Semaphore(max_in_flight) if max_in_flight is not None else None
        )
        self.handler_timeout = handler_timeout
        self.respcache = (
            ResponseCache(
                response_cache_size,
                on_invalidation=self.stats.record_cache_invalidation,
            )
            if response_cache_size > 0
            else None
        )
        self.gzip_enabled = gzip_enabled
        self.staleness = StalenessIndex(store)
        super().__init__(address, handler)


class ReleaseRequestHandler(BaseHTTPRequestHandler):
    """Routes one request; holds no state beyond the connection."""

    server_version = "repro-serving/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload, extra_headers=()) -> None:
        body = canonical_json(payload)
        self.send_response(status)
        for name, value in extra_headers:
            self.send_header(name, value)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"status": status, "error": message})

    def _drain_request_body(self) -> None:
        """Consume an unread request body so a keep-alive connection stays
        aligned on the next request line (chunked bodies close instead)."""
        if self.headers.get("Transfer-Encoding", "").lower() == "chunked":
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # Malformed header: the body length is unknowable, so the
            # connection cannot be re-aligned — answer, then close it.
            self.close_connection = True
            return
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                self.close_connection = True
                return
            length -= len(chunk)

    def _method_not_allowed(self) -> None:
        self._drain_request_body()
        self._send_json(
            405,
            {"status": 405, "error": "this API is read-only"},
            extra_headers=(("Allow", "GET, HEAD"),),
        )

    def do_POST(self) -> None:
        self._method_not_allowed()

    def do_PUT(self) -> None:
        self._method_not_allowed()

    def do_DELETE(self) -> None:
        self._method_not_allowed()

    def do_PATCH(self) -> None:
        self._method_not_allowed()

    def do_HEAD(self) -> None:
        # Same routing and headers as GET; _send_json suppresses the body,
        # so load-balancer probes (`curl -I /healthz`) see a real 200.
        self.do_GET()

    # -- response cache plumbing -----------------------------------------
    def _cache_context(self, segments: List[str]) -> Optional[Tuple[str, Optional[str]]]:
        """``(route, store fingerprint)`` when the route is cacheable.

        Per-release routes (``/releases/<key>...``) are the cacheable ones:
        their whole response is a pure function of the stored bytes behind
        ``<key>`` (pinned by the backend fingerprint) and the fixed policy.
        ``/``, ``/releases`` and ``/healthz`` stay uncached — they depend on
        the store's full key set or on live counters.
        """
        if self.server.respcache is None:
            return None
        if len(segments) < 2 or segments[0] != "releases":
            return None
        fingerprint = self.server.store.fingerprint(segments[1])
        if len(segments) == 2 and fingerprint is not None:
            # The metadata body embeds a staleness verdict that depends on
            # *sibling* releases (a refresh republishing another key makes
            # this one stale without touching its bytes), so its cache entry
            # is pinned to the whole store's fingerprint set, not just the
            # key's own.
            fingerprint = f"{fingerprint}|{self.server.staleness.token()}"
        return "/" + "/".join(segments), fingerprint

    def _accepts_gzip(self) -> bool:
        """Whether the request's ``Accept-Encoding`` admits gzip (q != 0)."""
        wildcard = False
        for clause in self.headers.get("Accept-Encoding", "").split(","):
            parts = clause.strip().split(";")
            coding = parts[0].strip().lower()
            if coding not in ("gzip", "x-gzip", "*"):
                continue
            quality = 1.0
            for param in parts[1:]:
                param = param.strip()
                if param.startswith("q="):
                    try:
                        quality = float(param[2:])
                    except ValueError:
                        quality = 0.0
            if coding == "*":
                wildcard = quality > 0
                continue
            return quality > 0  # an explicit gzip clause is definitive
        return wildcard

    def _if_none_match(self, etag: str) -> bool:
        """Whether the request's ``If-None-Match`` matches ``etag``."""
        header = self.headers.get("If-None-Match")
        if not header:
            return False
        if header.strip() == "*":
            return True
        candidates = [tag.strip() for tag in header.split(",")]
        return any(tag == etag or tag == f"W/{etag}" for tag in candidates)

    def _send_cached(self, entry: CachedResponse) -> None:
        """Answer from precomputed bytes: 304 on ETag match, else the
        negotiated (identity or gzip) variant — no serialisation either way."""
        if self._if_none_match(entry.etag):
            self.server.stats.record_etag_hit()
            # A 304 has no body by definition (keep-alive clients know not
            # to read one), so no Content-Length is sent.
            self.send_response(304)
            self.send_header("ETag", entry.etag)
            self.send_header("Vary", "Accept-Encoding")
            self.end_headers()
            return
        use_gzip = self.server.gzip_enabled and self._accepts_gzip()
        body = entry.gzip_body if use_gzip else entry.body
        self.send_response(200)
        self.send_header("ETag", entry.etag)
        self.send_header("Vary", "Accept-Encoding")
        if use_gzip:
            self.server.stats.record_gzip_response()
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    # -- routing ---------------------------------------------------------
    def do_GET(self) -> None:
        segments = [unquote(part) for part in urlsplit(self.path).path.split("/") if part]
        try:
            self._respond_and_send(segments)
        except BrokenPipeError:  # pragma: no cover - client hung up
            pass
        except Exception as exc:  # noqa: BLE001 - a bug must not drop the connection
            try:
                self._send_error_json(500, f"internal error: {exc}")
            except Exception:  # pragma: no cover - response already in flight
                pass

    def _respond_and_send(self, segments: List[str]) -> None:
        """Serve from the response cache when possible, else route and
        (for a cacheable 200) cache the canonical bytes for the next hit.

        A cache hit bypasses load shedding and the handler timeout the same
        way ``/healthz`` does: it performs no store read and no handler work
        worth bounding, only a fingerprint check and a socket write.
        """
        context = self._cache_context(segments)
        if context is not None:
            route, fingerprint = context
            entry = self.server.respcache.get(route, fingerprint)
            if entry is not None:
                self._send_cached(entry)
                return
        status, payload, headers = self._respond(segments)
        if context is not None and status == 200 and context[1] is not None and not headers:
            # The fingerprint was read *before* the store was: if the
            # artefacts changed mid-read, the stale token makes the next
            # lookup invalidate and rebuild (same pattern as the parsed-
            # release LRU cache).
            entry = self.server.respcache.put(context[0], context[1], canonical_json(payload))
            self._send_cached(entry)
            return
        self._send_json(status, payload, extra_headers=headers)

    def _respond(self, segments: List[str]) -> Response:
        """Apply load shedding and the handler timeout around the route.

        ``/healthz`` bypasses both: a probe must see through an overload
        (and report it) rather than be shed by it.
        """
        if segments == ["healthz"]:
            return self._handle_health()
        limiter = self.server.limiter
        if limiter is not None and not limiter.acquire(blocking=False):
            self.server.stats.record_shed()
            return (
                503,
                {
                    "status": 503,
                    "error": "server is at its in-flight request limit; retry shortly",
                },
                (("Retry-After", str(RETRY_AFTER_SECONDS)),),
            )
        try:
            return self._route_with_timeout(segments)
        finally:
            if limiter is not None:
                limiter.release()

    def _route_with_timeout(self, segments: List[str]) -> Response:
        """Run the route, bounding its wall clock by ``handler_timeout``.

        The route only *computes* a response (handlers never touch the
        socket), so on timeout the worker thread is abandoned mid-read and
        the connection thread answers 503 — the stuck read cannot write a
        late, interleaved response.
        """
        timeout = self.server.handler_timeout
        if timeout is None:
            return self._route(segments)
        outcome: Dict[str, object] = {}

        def run() -> None:
            try:
                outcome["response"] = self._route(segments)
            except Exception as exc:  # noqa: BLE001 - re-raised on the connection thread
                outcome["error"] = exc

        worker = threading.Thread(target=run, name="repro-serving-handler", daemon=True)
        worker.start()
        worker.join(timeout)
        if worker.is_alive():
            self.server.stats.record_handler_timeout()
            return (
                503,
                {
                    "status": 503,
                    "error": f"handler exceeded its {timeout:g}s timeout; retry shortly",
                },
                (("Retry-After", str(RETRY_AFTER_SECONDS)),),
            )
        if "error" in outcome:
            raise outcome["error"]  # type: ignore[misc]
        return outcome["response"]  # type: ignore[return-value]

    def _route(self, segments: List[str]) -> Response:
        if not segments:
            return self._handle_index()
        if segments[0] != "releases":
            return self._error(404, f"unknown endpoint /{'/'.join(segments)}")
        if len(segments) == 1:
            return self._handle_list()
        key = segments[1]
        if len(segments) == 2:
            return self._handle_metadata(key)
        if len(segments) == 3 and segments[2] == "roles":
            return self._handle_roles(key)
        if len(segments) == 4 and segments[2] == "views":
            return self._handle_view(key, segments[3])
        return self._error(404, f"unknown endpoint /{'/'.join(segments)}")

    # -- endpoint handlers -------------------------------------------------
    @staticmethod
    def _ok(payload: dict) -> Response:
        return (200, payload, ())

    @staticmethod
    def _error(status: int, message: str) -> Response:
        return (status, {"status": status, "error": message}, ())

    def _handle_index(self) -> Response:
        return self._ok(
            {
                "service": "repro release serving",
                "endpoints": [
                    "/healthz",
                    "/releases",
                    "/releases/<key>",
                    "/releases/<key>/roles",
                    "/releases/<key>/views/<role>",
                ],
            }
        )

    def _handle_health(self) -> Response:
        store: ReleaseStore = self.server.store
        policy: AccessPolicy = self.server.policy
        fault_tolerance = self.server.stats.snapshot()
        respcache = self.server.respcache
        response_cache: Dict[str, object] = {
            "enabled": respcache is not None,
            "gzip": self.server.gzip_enabled,
        }
        if respcache is not None:
            response_cache.update(respcache.stats())
        return self._ok(
            {
                "status": "degraded" if fault_tolerance["quarantined"] else "ok",
                "releases": len(store.keys()),
                "roles": policy.roles(),
                "cache": store.cache_info(),
                "response_cache": response_cache,
                "fault_tolerance": fault_tolerance,
                "staleness": self.server.staleness.summary(),
            }
        )

    def _handle_list(self) -> Response:
        return self._ok({"releases": self.server.store.keys()})

    def _integrity_failure(self, key: str, error: ReleaseIntegrityError) -> Response:
        """Map a failed read: 404 when absent, else quarantine + 500.

        The first corrupt read answers 500 (the honest status for a broken
        stored artefact) and quarantines the key at its current store
        fingerprint; :meth:`_check_quarantine` turns every later request
        into a fast 404-with-reason until the artefact changes.
        """
        store: ReleaseStore = self.server.store
        if not store.exists(key):
            return self._error(404, f"no release stored under key {key!r}")
        message = f"stored release {key!r} cannot be served: {error}"
        self.server.stats.quarantine(key, store.fingerprint(key), message)
        return self._error(500, message)

    def _check_quarantine(self, key: str) -> Optional[Response]:
        """A fast 404 for a key quarantined at the store's current bytes."""
        reason = self.server.stats.quarantine_reason(
            key, self.server.store.fingerprint(key)
        )
        if reason is None:
            return None
        return self._error(
            404, f"release {key!r} is quarantined as corrupt ({reason})"
        )

    def _handle_metadata(self, key: str) -> Response:
        quarantined = self._check_quarantine(key)
        if quarantined is not None:
            return quarantined
        store: ReleaseStore = self.server.store
        try:
            document = store.load_document(key)
        except ReleaseIntegrityError as error:
            return self._integrity_failure(key, error)
        if document.get("level_view"):
            return self._error(
                500, f"stored key {key!r} holds a single level view, not a release"
            )
        metadata = _release_metadata(key, document)
        metadata["provenance"] = document.get("provenance", {})
        metadata["staleness"] = self.server.staleness.staleness_for(key)
        return self._ok(metadata)

    def _handle_roles(self, key: str) -> Response:
        if not self.server.store.exists(key):
            return self._error(404, f"no release stored under key {key!r}")
        policy: AccessPolicy = self.server.policy
        roles = {
            role: {
                "level": policy.level_for(role),
                "information_level": policy.information_level(role).name,
            }
            for role in policy.roles()
        }
        return self._ok({"key": key, "roles": roles})

    def _handle_view(self, key: str, role: str) -> Response:
        quarantined = self._check_quarantine(key)
        if quarantined is not None:
            return quarantined
        store: ReleaseStore = self.server.store
        try:
            release = store.load(key)
        except ReleaseIntegrityError as error:
            return self._integrity_failure(key, error)
        policy: AccessPolicy = self.server.policy
        try:
            view = policy.view_for(role, release)
        except AccessLevelError as error:
            return self._error(403, f"role {role!r} cannot be served: {error}")
        return self._ok(
            {
                "key": key,
                "role": role,
                "information_level": policy.information_level(role).name,
                "dataset": release.dataset_name,
                "release": view.to_dict(),
            }
        )


class ReleaseServer:
    """A read-only HTTP server over a release store and an access policy.

    Parameters
    ----------
    store:
        The :class:`ReleaseStore` releases are served from.  Serving only
        ever reads; a publisher process populates the store separately.
    policy:
        Maps caller roles onto the information levels they may read.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` / :attr:`url`).
    verbose:
        Log one line per request to stderr (default quiet).
    max_in_flight:
        Bound on concurrently-handled requests; requests beyond it are shed
        with ``503`` + ``Retry-After`` instead of queueing without bound
        (``/healthz`` and response-cache hits are exempt).  ``None``
        (default) disables shedding.
    handler_timeout:
        Wall-clock seconds one request's handler work may take before the
        request answers ``503`` (``None`` disables — the default).
    response_cache_size:
        Routes kept in the fingerprint-keyed response byte cache (default
        :data:`~repro.serving.respcache.DEFAULT_RESPONSE_CACHE_SIZE`).  A
        cached route serves precomputed canonical bytes — with a strong
        ``ETag``, ``If-None-Match`` → ``304`` revalidation and a gzip
        variant — and performs zero serialisation and zero store reads;
        ``0`` disables the cache (and with it ETag/gzip support).
    gzip_enabled:
        Whether cached routes negotiate ``Content-Encoding: gzip`` via
        ``Accept-Encoding`` (default on; the identity and gzip variants are
        byte-stable either way).

    Examples
    --------
    >>> server = ReleaseServer(store, policy, port=0).start()   # doctest: +SKIP
    >>> fetch_json(server.url, "/healthz")["status"]            # doctest: +SKIP
    'ok'
    >>> server.stop()                                           # doctest: +SKIP
    """

    def __init__(
        self,
        store: ReleaseStore,
        policy: AccessPolicy,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        max_in_flight: Optional[int] = None,
        handler_timeout: Optional[float] = None,
        response_cache_size: int = DEFAULT_RESPONSE_CACHE_SIZE,
        gzip_enabled: bool = True,
    ):
        if max_in_flight is not None and int(max_in_flight) < 1:
            raise ValidationError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if handler_timeout is not None and float(handler_timeout) <= 0:
            raise ValidationError(f"handler_timeout must be > 0, got {handler_timeout}")
        if int(response_cache_size) < 0:
            raise ValidationError(
                f"response_cache_size must be >= 0, got {response_cache_size}"
            )
        self.store = store
        self.policy = policy
        self._http = _ReleaseHTTPServer(
            (host, port),
            ReleaseRequestHandler,
            store,
            policy,
            verbose,
            max_in_flight=int(max_in_flight) if max_in_flight is not None else None,
            handler_timeout=float(handler_timeout) if handler_timeout is not None else None,
            response_cache_size=int(response_cache_size),
            gzip_enabled=bool(gzip_enabled),
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def stats(self) -> ServingStats:
        """Live degradation + cache counters (sheds, timeouts, quarantine,
        ETag hits, gzip responses, cache invalidations)."""
        return self._http.stats

    @property
    def response_cache(self) -> Optional[ResponseCache]:
        """The fingerprint-keyed response byte cache (``None`` when disabled)."""
        return self._http.respcache

    # -- address -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ReleaseServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serving", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and release the socket (idempotent)."""
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join()
            self._thread = None
        self._http.server_close()

    def serve_forever(self) -> None:
        """Blocking serve loop for the CLI (Ctrl-C returns cleanly)."""
        try:
            self._http.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._http.server_close()

    def __enter__(self) -> "ReleaseServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def create_server(
    store: Union[ReleaseStore, PathLike],
    policy: Union[AccessPolicy, PathLike],
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: int = DEFAULT_CACHE_SIZE,
    verbose: bool = False,
    max_in_flight: Optional[int] = None,
    handler_timeout: Optional[float] = None,
    response_cache_size: int = DEFAULT_RESPONSE_CACHE_SIZE,
    gzip_enabled: bool = True,
) -> ReleaseServer:
    """Build a :class:`ReleaseServer` from objects or from on-disk paths.

    ``store`` may be a store directory (opened with a read-through cache of
    ``cache_size`` releases) and ``policy`` a JSON file in the
    :meth:`AccessPolicy.to_dict` format — exactly what ``repro serve`` passes
    through from its command line (including the ``max_in_flight`` /
    ``handler_timeout`` degradation knobs and the response-cache / gzip
    switches).
    """
    if not isinstance(store, ReleaseStore):
        store = ReleaseStore(store, cache_size=cache_size)
    if not isinstance(policy, AccessPolicy):
        policy = AccessPolicy.from_dict(from_json_file(policy))
    return ReleaseServer(
        store,
        policy,
        host=host,
        port=port,
        verbose=verbose,
        max_in_flight=max_in_flight,
        handler_timeout=handler_timeout,
        response_cache_size=response_cache_size,
        gzip_enabled=gzip_enabled,
    )
