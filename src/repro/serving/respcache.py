"""Fingerprint-keyed HTTP response cache for the serving layer.

The serving hot path used to re-serialise the same release view on every
request: load (or LRU-hit) the parsed release, apply the access policy, and
run the canonical JSON writer over a payload that had not changed since the
last request.  :class:`ResponseCache` removes all of that from the hot path
by caching the *response bytes themselves*, keyed by route and validated by
the store's per-key change fingerprint — the same cheap token the parsed-
release LRU cache re-validates against (:meth:`ReleaseStore.fingerprint`).

Per entry the cache keeps, computed **once per (route, fingerprint)**:

* the identity body — the canonical JSON bytes exactly as an uncached
  handler would produce them, so cached and uncached responses are
  byte-identical;
* the gzip variant — ``gzip.compress`` with ``mtime=0``, so the compressed
  bytes are deterministic across processes (every member of a
  :class:`~repro.serving.fleet.ServerFleet` serves identical gzip bytes);
* a strong ``ETag`` derived from ``(store fingerprint, route)``, which is
  what lets the server answer ``If-None-Match`` revalidations with an empty
  ``304`` without touching the store at all.

A lookup whose stored fingerprint no longer matches the store's current one
drops the entry (counted as an invalidation), so a republished key is never
served stale: the republish changes the backend fingerprint, the stale entry
dies on its next lookup, and the following request rebuilds the bytes from
the fresh artefact.

Counter semantics (the audit invariant ``/healthz`` numbers must satisfy):
every :meth:`ResponseCache.get` call is exactly one *lookup* and resolves
to exactly one of *hit* or *miss* — ``hits + misses == lookups`` always.  A
stale-fingerprint drop additionally counts one *invalidation*, but the
lookup that dropped it is still the same single miss; the rebuild that
follows (:meth:`ResponseCache.put`) touches no counter at all, so an
invalidate-and-rebuild request is never double-counted.

The cache is a bounded LRU (``max_entries``) guarded by one lock; entries
are immutable after construction, so serving a hit never copies or mutates.
"""

from __future__ import annotations

import gzip
import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.exceptions import ValidationError

#: Routes kept in the response cache by default.
DEFAULT_RESPONSE_CACHE_SIZE = 256

#: gzip compression level for the precomputed variant (speed/size balance).
GZIP_LEVEL = 6


def make_etag(fingerprint: str, route: str) -> str:
    """A strong entity tag for ``route`` served at ``fingerprint``.

    Strong by construction: the store fingerprint changes whenever the bytes
    behind the key may have changed, and the route pins which projection of
    those bytes the tag describes.
    """
    digest = hashlib.sha256(f"{fingerprint}|{route}".encode("utf-8")).hexdigest()
    return f'"{digest[:32]}"'


class CachedResponse:
    """One immutable cached 200 response: identity + gzip bytes + ETag."""

    __slots__ = ("fingerprint", "etag", "body", "gzip_body")

    def __init__(self, fingerprint: str, route: str, body: bytes):
        self.fingerprint = fingerprint
        self.etag = make_etag(fingerprint, route)
        self.body = body
        # mtime=0 keeps the compressed bytes deterministic, so every fleet
        # process (and every re-warm at the same fingerprint) serves
        # identical gzip bytes.
        self.gzip_body = gzip.compress(body, compresslevel=GZIP_LEVEL, mtime=0)


class ResponseCache:
    """Bounded LRU of :class:`CachedResponse` entries, keyed by route.

    Parameters
    ----------
    max_entries:
        Bound on cached routes; the least-recently-used entry is evicted
        beyond it.  Must be >= 1 (construct no cache at all to disable
        caching — the server treats ``response_cache_size=0`` that way).
    on_invalidation:
        Optional callback fired once per entry dropped because its
        fingerprint went stale (the serving stats counter).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_RESPONSE_CACHE_SIZE,
        on_invalidation: Optional[Callable[[], None]] = None,
    ):
        if int(max_entries) < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, CachedResponse]" = OrderedDict()
        self._lock = threading.Lock()
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._on_invalidation = on_invalidation

    def get(self, route: str, fingerprint: Optional[str]) -> Optional[CachedResponse]:
        """The cached response for ``route`` at ``fingerprint``, or ``None``.

        ``None`` fingerprints never hit (the key is absent, there is nothing
        valid to serve); a stored entry whose fingerprint differs is dropped
        and counted as an invalidation — the route was republished behind
        the cache.

        Exactly one lookup and one hit *or* miss is counted per call —
        never both, and the stale-drop path counts its invalidation on top
        of the same single miss, so ``hits + misses == lookups`` holds
        through any mix of hits, cold misses and invalidations.
        """
        invalidated = False
        with self._lock:
            self._lookups += 1
            entry = self._entries.get(route)
            if entry is not None and fingerprint is not None and entry.fingerprint == fingerprint:
                self._entries.move_to_end(route)
                self._hits += 1
                return entry
            if entry is not None:
                del self._entries[route]
                self._invalidations += 1
                invalidated = True
            self._misses += 1
        if invalidated and self._on_invalidation is not None:
            self._on_invalidation()
        return None

    def put(self, route: str, fingerprint: str, body: bytes) -> CachedResponse:
        """Cache (and return) the response bytes for ``route`` at ``fingerprint``."""
        entry = CachedResponse(fingerprint, route, body)
        with self._lock:
            self._entries[route] = entry
            self._entries.move_to_end(route)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def stats(self) -> Dict[str, int]:
        """JSON-ready counters (rendered under ``/healthz``'s cache section).

        Satisfies ``hits + misses == lookups``; invalidations are a subset
        of the misses, not an extra bucket.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "lookups": self._lookups,
                "hits": self._hits,
                "misses": self._misses,
                "invalidations": self._invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
