"""Multi-process serving: N ``SO_REUSEPORT`` workers behind one port.

A single :class:`~repro.serving.server.ReleaseServer` process tops out at
whatever one Python process can push through one accept loop.  The request
path, however, is read-only and shares nothing mutable — every worker needs
only the store *directory* and the access-policy dict — so the natural way
to scale it is the classic ``SO_REUSEPORT`` fleet: N independent processes
each bind the **same** ``host:port`` with ``SO_REUSEPORT`` set, and the
kernel load-balances incoming connections across them.  No proxy, no shared
state, no coordination on the hot path.

:class:`ServerFleet` owns the lifecycle:

* **spawn** — one :mod:`multiprocessing` worker per process, each building
  its own :class:`~repro.core.store.ReleaseStore` over the shared directory
  (stores hold locks and caches, so they are constructed *inside* the
  worker, never pickled across);
* **readiness** — each worker reports its bound port over a pipe-backed
  queue, then the fleet polls ``GET /healthz`` until the shared port
  answers ``200`` (or a startup timeout trips);
* **shutdown** — ``stop()`` sends ``SIGTERM``; workers install a handler
  that shuts the HTTP loop down gracefully (in-flight responses finish);
* **respawn** — a monitor thread replaces dead workers, up to
  ``max_respawns`` total (mirroring the process executor's
  ``max_pool_rebuilds`` budget), so one segfaulted worker degrades capacity
  for milliseconds instead of forever.

On platforms without ``SO_REUSEPORT`` (or with ``processes=1``) the fleet
**falls back** to a single in-process :class:`ReleaseServer` behind the same
interface — ``fallback_reason`` says why — so callers never need their own
platform switch.

Because each worker runs the same fingerprint-keyed response cache over the
same store directory, responses are byte-identical (modulo negotiated
encoding) no matter which worker the kernel picks: the canonical JSON and
the deterministic gzip variant are pure functions of the stored bytes.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_module
import signal
import socket
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.access import AccessPolicy
from repro.core.store import ReleaseStore
from repro.exceptions import ServingError, ValidationError
from repro.serving.client import http_get
from repro.serving.respcache import DEFAULT_RESPONSE_CACHE_SIZE
from repro.serving.server import DEFAULT_CACHE_SIZE, ReleaseServer, _ReleaseHTTPServer
from repro.serving.server import ReleaseRequestHandler
from repro.utils.serialization import from_json_file

PathLike = Union[str, Path]

#: Seconds the fleet waits for the shared port to answer ``/healthz``.
DEFAULT_STARTUP_TIMEOUT = 30.0

#: Dead workers replaced per fleet lifetime before giving up (the
#: ``max_pool_rebuilds`` idea applied to serving processes).
DEFAULT_MAX_RESPAWNS = 2

#: Poll cadence of the readiness probe and the respawn monitor.
_POLL_SECONDS = 0.05


def reuseport_available() -> bool:
    """Whether this platform supports ``SO_REUSEPORT`` on TCP sockets."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        finally:
            probe.close()
    except OSError:  # pragma: no cover - platform-dependent
        return False
    return True


def _reserve_port(host: str) -> int:
    """Pick a currently-free port for the fleet to share.

    The probe socket binds with ``SO_REUSEPORT`` and is closed before any
    worker binds; workers then claim the number with their own REUSEPORT
    sockets.  (The classic tiny race of reserve-then-rebind — acceptable for
    tests and loopback deployments; production fleets pass a fixed port.)
    """
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


class _ReuseportHTTPServer(_ReleaseHTTPServer):
    """The threading HTTP server, binding with ``SO_REUSEPORT`` set."""

    def server_bind(self):
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def _fleet_worker(config: Dict, ready_queue) -> None:
    """One fleet process: bind, report readiness, serve until SIGTERM.

    Module-level (and fed only a plain dict) so it works under both the
    ``fork`` and ``spawn`` multiprocessing start methods: the store and the
    HTTP server are constructed *here*, inside the worker.
    """
    store = ReleaseStore(config["store_path"], cache_size=config["cache_size"])
    policy = AccessPolicy.from_dict(config["policy"])
    try:
        httpd = _ReuseportHTTPServer(
            (config["host"], config["port"]),
            ReleaseRequestHandler,
            store,
            policy,
            config["verbose"],
            max_in_flight=config["max_in_flight"],
            handler_timeout=config["handler_timeout"],
            response_cache_size=config["response_cache_size"],
            gzip_enabled=config["gzip_enabled"],
        )
    except OSError as error:
        ready_queue.put(("error", config["worker"], str(error)))
        sys.exit(1)
    ready_queue.put(("bound", config["worker"], httpd.server_address[1]))

    def shut_down(signum, frame):  # noqa: ARG001 - signal handler signature
        # serve_forever blocks this (main) thread, and shutdown() must be
        # called from another one — hence the helper thread.
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, shut_down)
    signal.signal(signal.SIGINT, shut_down)
    try:
        httpd.serve_forever()
    finally:
        httpd.server_close()


class ServerFleet:
    """N ``SO_REUSEPORT`` server processes sharing one port and one store.

    Parameters
    ----------
    store_path:
        The release store every worker opens read-only: either a release
        directory or a SQLite store file (``.db``; WAL mode makes its
        concurrent readers safe).  A *path* (not a live
        :class:`ReleaseStore`) is required: stores carry locks and caches
        that must not cross process boundaries, and an in-memory store
        cannot be shared between processes at all.
    policy:
        An :class:`AccessPolicy`, its ``to_dict()`` mapping, or a JSON file
        path in that format.
    host, port:
        Shared bind address.  ``port=0`` reserves a free port up front (all
        workers must agree on the number before binding).
    processes:
        Fleet size.  ``1`` — or any value on a platform without
        ``SO_REUSEPORT`` — serves from a single in-process
        :class:`ReleaseServer` instead (see :attr:`fallback_reason`).
    cache_size, response_cache_size, gzip_enabled, max_in_flight,
    handler_timeout, verbose:
        Passed through to every worker's server, so the fleet behaves like
        one bigger :class:`ReleaseServer`.
    max_respawns:
        Dead workers replaced over the fleet's lifetime before the monitor
        gives up (the serving twin of ``ProcessExecutor.max_pool_rebuilds``).
    startup_timeout:
        Seconds to wait for every worker to bind and for ``/healthz`` to
        answer before ``start()`` fails.

    Examples
    --------
    >>> fleet = ServerFleet(store_dir, policy, processes=4).start()  # doctest: +SKIP
    >>> fetch_json(fleet.url, "/healthz")["status"]                  # doctest: +SKIP
    'ok'
    >>> fleet.stop()                                                 # doctest: +SKIP
    """

    def __init__(
        self,
        store_path: PathLike,
        policy: Union[AccessPolicy, Dict, PathLike],
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int = 2,
        cache_size: int = DEFAULT_CACHE_SIZE,
        response_cache_size: int = DEFAULT_RESPONSE_CACHE_SIZE,
        gzip_enabled: bool = True,
        max_in_flight: Optional[int] = None,
        handler_timeout: Optional[float] = None,
        verbose: bool = False,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        startup_timeout: float = DEFAULT_STARTUP_TIMEOUT,
    ):
        if int(processes) < 1:
            raise ValidationError(f"processes must be >= 1, got {processes}")
        if int(max_respawns) < 0:
            raise ValidationError(f"max_respawns must be >= 0, got {max_respawns}")
        store_path = Path(store_path)
        if not (store_path.is_dir() or store_path.is_file()):
            raise ValidationError(
                "store_path must be an existing release-store directory or "
                f"SQLite store file, got {store_path}"
            )
        if isinstance(policy, AccessPolicy):
            policy_dict = policy.to_dict()
        elif isinstance(policy, dict):
            policy_dict = dict(policy)
        else:
            policy_dict = from_json_file(policy)
        self.policy = AccessPolicy.from_dict(policy_dict)
        self.store_path = store_path
        self.requested_processes = int(processes)
        self.max_respawns = int(max_respawns)
        self.startup_timeout = float(startup_timeout)
        self.fallback_reason: Optional[str] = None
        if self.requested_processes == 1:
            self.fallback_reason = "processes=1"
        elif not reuseport_available():
            self.fallback_reason = "SO_REUSEPORT unavailable on this platform"
        self.processes = 1 if self.fallback_reason else self.requested_processes
        self._config = {
            "host": host,
            "port": int(port),
            "policy": policy_dict,
            "store_path": str(store_path),
            "cache_size": int(cache_size),
            "response_cache_size": int(response_cache_size),
            "gzip_enabled": bool(gzip_enabled),
            "max_in_flight": max_in_flight,
            "handler_timeout": handler_timeout,
            "verbose": bool(verbose),
        }
        self._workers: List[multiprocessing.Process] = []
        self._single: Optional[ReleaseServer] = None
        self._queue = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._respawns = 0
        self._lock = threading.Lock()
        self._started = False

    # -- address -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self._config["host"]

    @property
    def port(self) -> int:
        return self._config["port"]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- introspection -----------------------------------------------------
    def alive_workers(self) -> int:
        """Live fleet processes (1 in single-process fallback mode)."""
        if self._single is not None:
            return 1 if self._started else 0
        return sum(1 for worker in self._workers if worker.is_alive())

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (empty in fallback mode)."""
        return [worker.pid for worker in self._workers if worker.is_alive()]

    @property
    def respawns(self) -> int:
        """Dead workers replaced so far."""
        return self._respawns

    def describe(self) -> Dict:
        """JSON-ready effective configuration (the ``repro serve`` log line)."""
        return {
            "processes": self.processes,
            "requested_processes": self.requested_processes,
            "reuseport": self.fallback_reason is None,
            "fallback_reason": self.fallback_reason,
            "host": self.host,
            "port": self.port,
            "cache_size": self._config["cache_size"],
            "response_cache_size": self._config["response_cache_size"],
            "gzip": self._config["gzip_enabled"],
            "max_in_flight": self._config["max_in_flight"],
            "handler_timeout": self._config["handler_timeout"],
            "max_respawns": self.max_respawns,
        }

    # -- lifecycle ---------------------------------------------------------
    def _spawn_worker(self, index: int) -> multiprocessing.Process:
        config = dict(self._config, worker=index)
        worker = multiprocessing.Process(
            target=_fleet_worker,
            args=(config, self._queue),
            name=f"repro-serving-worker-{index}",
            daemon=True,
        )
        worker.start()
        return worker

    def _await_bound(self, expected: int) -> None:
        """Wait for ``expected`` workers to report their bound port."""
        deadline = time.monotonic() + self.startup_timeout
        bound = 0
        while bound < expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServingError(
                    f"fleet startup timed out: {bound}/{expected} workers bound "
                    f"within {self.startup_timeout:g}s"
                )
            try:
                kind, worker, detail = self._queue.get(timeout=min(remaining, 1.0))
            except queue_module.Empty:
                continue
            if kind == "error":
                raise ServingError(f"fleet worker {worker} failed to bind: {detail}")
            bound += 1

    def _await_healthz(self) -> None:
        """Poll the shared port until ``/healthz`` answers 200."""
        deadline = time.monotonic() + self.startup_timeout
        last_error = "no response"
        while time.monotonic() < deadline:
            try:
                status, _ = http_get(f"{self.url}/healthz", timeout=2.0)
            except ServingError as error:
                last_error = str(error)
            else:
                if status == 200:
                    return
                last_error = f"/healthz answered {status}"
            time.sleep(_POLL_SECONDS)
        raise ServingError(f"fleet readiness probe failed: {last_error}")

    def _monitor_loop(self) -> None:
        """Replace dead workers until stopped or the respawn budget is spent."""
        while not self._stopping.wait(_POLL_SECONDS):
            with self._lock:
                for index, worker in enumerate(self._workers):
                    if worker.is_alive() or self._stopping.is_set():
                        continue
                    if self._respawns >= self.max_respawns:
                        continue
                    self._respawns += 1
                    self._workers[index] = self._spawn_worker(index)

    def start(self) -> "ServerFleet":
        """Bind the fleet, wait for readiness, and return ``self``."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        if self.fallback_reason is not None:
            # Single-process path: an in-process server behind the same API.
            self._single = ReleaseServer(
                ReleaseStore(
                    self._config["store_path"], cache_size=self._config["cache_size"]
                ),
                self.policy,
                host=self._config["host"],
                port=self._config["port"],
                verbose=self._config["verbose"],
                max_in_flight=self._config["max_in_flight"],
                handler_timeout=self._config["handler_timeout"],
                response_cache_size=self._config["response_cache_size"],
                gzip_enabled=self._config["gzip_enabled"],
            ).start()
            self._config["port"] = self._single.port
            return self
        if self._config["port"] == 0:
            self._config["port"] = _reserve_port(self._config["host"])
        self._queue = multiprocessing.Queue()
        self._workers = [self._spawn_worker(index) for index in range(self.processes)]
        try:
            self._await_bound(self.processes)
            self._await_healthz()
        except Exception:
            self.stop()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Signal-driven shutdown: SIGTERM every worker, then reap (idempotent)."""
        self._stopping.set()
        if self._single is not None:
            self._single.stop()
            self._single = None
            return
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            if worker.is_alive():
                worker.terminate()  # delivers SIGTERM → graceful shutdown
        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.kill()
                worker.join(timeout=5.0)
        if self._queue is not None:
            self._queue.close()
            self._queue = None

    def serve_forever(self) -> None:
        """Blocking front for the CLI: wait until interrupted, then stop.

        ``KeyboardInterrupt`` propagates after the graceful stop, so the CLI
        reports the uniform one-line message and exit status 130.
        """
        try:
            while True:
                time.sleep(0.5)
        finally:
            self.stop()

    def __enter__(self) -> "ServerFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServerFleet(processes={self.processes}, url={self.url!r}, "
            f"store={str(self.store_path)!r})"
        )


def format_config_line(config: Dict) -> str:
    """One structured-JSON stderr line describing an effective serving setup.

    Sorted keys make the line diff-stable across runs, so fleet deployments
    are diagnosable (and greppable) from logs alone.
    """
    return json.dumps({"event": "serve-config", **config}, sort_keys=True)
