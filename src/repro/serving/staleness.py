"""Staleness tracking for served releases.

A release is *stale* when the store holds a newer disclosure of the same
dataset — i.e. its provenance ``graph_revision`` is behind the highest
revision any same-dataset release in the store carries.  The serving layer
cannot see the live graph (it only ever reads the store), so the newest
stored revision *is* its view of "the current graph": the publisher's
refresh path (:meth:`~repro.core.publisher.GraphPublisher.refresh`) archives
every refresh under a revision-qualified key and republishes the live alias,
which is exactly the signal this index watches.

:class:`StalenessIndex` keeps one tiny entry per store key — ``(fingerprint,
dataset, graph_revision, affected-level count)`` parsed lazily from the
cheap :meth:`~repro.core.store.ReleaseStore.load_document` path — pinned to
the key's change fingerprint, so an unchanged artefact is never re-read and
a republished one is re-parsed exactly once.  The index also exposes a
:meth:`token` over all ``(key, fingerprint)`` pairs: the server composes it
into the response-cache fingerprint of metadata routes, so *any* republish
invalidates every cached metadata body (a sibling's refresh changes this
release's staleness verdict without touching its bytes).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, NamedTuple, Optional

from repro.core.store import ReleaseStore
from repro.exceptions import ReleaseIntegrityError


class _Entry(NamedTuple):
    """What the index remembers about one stored release."""

    fingerprint: Optional[str]
    dataset: Optional[str]
    revision: Optional[int]
    affected_levels: int


def _parse_entry(fingerprint: Optional[str], document: dict) -> _Entry:
    provenance = document.get("provenance") or {}
    revision = provenance.get("graph_revision")
    return _Entry(
        fingerprint=fingerprint,
        dataset=document.get("dataset_name"),
        revision=int(revision) if revision is not None else None,
        affected_levels=len(provenance.get("affected_levels", ())),
    )


class StalenessIndex:
    """Lazily-maintained revision index over a :class:`ReleaseStore`.

    Thread-safe: handler threads of the HTTP server share one instance.
    """

    def __init__(self, store: ReleaseStore):
        self._store = store
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _entry_for(self, key: str) -> Optional[_Entry]:
        """The current entry for ``key``, re-parsing only on fingerprint change.

        A key whose document cannot be read (corrupt artefact — the server
        quarantines it separately) is remembered as an unknown-revision
        entry at its fingerprint, so it is not re-read on every request.
        """
        fingerprint = self._store.fingerprint(key)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None and cached.fingerprint == fingerprint:
                return cached
        try:
            document = self._store.load_document(key)
        except ReleaseIntegrityError:
            entry = _Entry(fingerprint, None, None, 0)
        else:
            entry = _parse_entry(fingerprint, document)
        with self._lock:
            self._entries[key] = entry
        return entry

    def _refresh(self) -> Dict[str, _Entry]:
        """Bring the index in line with the store's current key set."""
        keys = set(self._store.keys())
        with self._lock:
            dropped = [key for key in self._entries if key not in keys]
            for key in dropped:
                del self._entries[key]
        return {key: self._entry_for(key) for key in sorted(keys)}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def staleness_for(self, key: str) -> dict:
        """The staleness verdict for one served release.

        ``stale`` is true when a same-dataset release in the store carries a
        higher ``graph_revision``; ``revisions_behind`` quantifies the gap
        and ``affected_levels`` reports how many levels the *newest* release
        re-perturbed to get there (0 for a from-scratch disclosure).  A
        release without a recorded revision (stored before provenance
        stamping existed) reports ``stale: false`` with null revisions —
        unknown, not known-fresh, but never blocking.
        """
        entries = self._refresh()
        entry = entries.get(key) or self._entry_for(key)
        latest_revision: Optional[int] = None
        latest_affected = 0
        if entry is not None and entry.dataset is not None:
            for other in entries.values():
                if other.dataset != entry.dataset or other.revision is None:
                    continue
                if latest_revision is None or other.revision > latest_revision:
                    latest_revision = other.revision
                    latest_affected = other.affected_levels
        served = entry.revision if entry is not None else None
        stale = served is not None and latest_revision is not None and served < latest_revision
        return {
            "graph_revision": served,
            "latest_revision": latest_revision,
            "stale": stale,
            "revisions_behind": (latest_revision - served) if stale else 0,
            "affected_levels": latest_affected if stale else 0,
        }

    def summary(self) -> dict:
        """Store-wide staleness for ``/healthz``."""
        entries = self._refresh()
        latest: Dict[str, int] = {}
        for entry in entries.values():
            if entry is None or entry.dataset is None or entry.revision is None:
                continue
            if entry.dataset not in latest or entry.revision > latest[entry.dataset]:
                latest[entry.dataset] = entry.revision
        stale_keys = sorted(
            key
            for key, entry in entries.items()
            if entry is not None
            and entry.dataset is not None
            and entry.revision is not None
            and entry.revision < latest.get(entry.dataset, entry.revision)
        )
        return {
            "tracked": len(entries),
            "stale": len(stale_keys),
            "stale_keys": stale_keys,
        }

    def token(self) -> str:
        """A digest over every ``(key, fingerprint)`` pair in the store.

        Changes whenever any key is added, removed or republished — the
        cache-composition hook that lets a *sibling's* refresh invalidate a
        cached metadata response whose own bytes did not move.  Fingerprints
        only (no document reads), so computing it is cheap on the hot path.
        """
        digest = hashlib.sha256()
        for key in sorted(self._store.keys()):
            digest.update(key.encode("utf-8"))
            digest.update(b"\x00")
            digest.update((self._store.fingerprint(key) or "").encode("utf-8"))
            digest.update(b"\x01")
        return digest.hexdigest()
