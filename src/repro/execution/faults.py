"""Deterministic fault injection for chaos-testing the execution layer.

A :class:`FaultPlan` scripts failures by ``(task index, attempt number)`` —
the same plan always fails the same tasks at the same attempts, so a chaos
test is reproducible run to run.  Three fault kinds are provided:

* :class:`RaiseFault` — raise an exception (transient by default, so the
  retry layer absorbs it);
* :class:`DelayFault` — sleep before the task body runs (exercises
  timeouts);
* :class:`KillWorkerFault` — terminate the worker process with ``os._exit``
  (exercises the process executor's broken-pool recovery; only meaningful
  under a :class:`~repro.execution.executors.ProcessExecutor`).

:class:`FaultInjectingExecutor` wraps any executor and applies a plan (plus
an optional :class:`~repro.execution.retry.RetryPolicy`) to every ``map``;
:class:`FaultInjectingBackend` wraps any
:class:`~repro.core.store.StoreBackend` and fails or delays scripted calls.
Attempt counters are kept as marker files under a ``state_dir`` so they
survive worker death and are shared across processes.

Everything here exists to *prove* the fault-tolerance contract: a run with
injected crashes and transient errors must produce artefacts bit-identical
to the fault-free run under the same seed (``tests/test_chaos.py``).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type

from repro.core.store import StoreBackend
from repro.exceptions import TransientError, ValidationError
from repro.execution.executors import Executor
from repro.execution.retry import RetryPolicy, map_with_retries


@dataclass(frozen=True)
class RaiseFault:
    """Raise ``exception`` on the listed attempt numbers (1-based)."""

    attempts: Tuple[int, ...] = (1,)
    exception: Type[BaseException] = TransientError
    message: str = "injected fault"

    def trigger(self, index: int, attempt: int) -> None:
        if attempt in self.attempts:
            raise self.exception(f"{self.message} (task {index}, attempt {attempt})")


@dataclass(frozen=True)
class DelayFault:
    """Sleep ``seconds`` before the task body on the listed attempts.

    An empty ``attempts`` tuple delays every attempt.
    """

    seconds: float = 0.05
    attempts: Tuple[int, ...] = ()

    def trigger(self, index: int, attempt: int) -> None:
        if not self.attempts or attempt in self.attempts:
            time.sleep(self.seconds)


@dataclass(frozen=True)
class KillWorkerFault:
    """Terminate the worker process on the listed attempts (1-based).

    Simulates a segfault / OOM kill: the process dies without cleanup, so a
    :class:`ProcessPoolExecutor` observes a broken pool.  The attempt marker
    is written *before* the kill, so the resubmitted task sees attempt 2 and
    proceeds — exactly one death per listed attempt.
    """

    attempts: Tuple[int, ...] = (1,)

    def trigger(self, index: int, attempt: int) -> None:
        if attempt in self.attempts:
            os._exit(17)


@dataclass(frozen=True)
class FaultPlan:
    """Faults per task index; tasks without an entry run clean."""

    faults: Mapping[int, Tuple[Any, ...]] = field(default_factory=dict)

    def for_task(self, index: int) -> Tuple[Any, ...]:
        return tuple(self.faults.get(index, ()))

    @classmethod
    def transient(cls, indices: Iterable[int], attempts: Tuple[int, ...] = (1,)) -> "FaultPlan":
        """A plan that raises a retryable fault for each listed task index."""
        return cls({index: (RaiseFault(attempts=attempts),) for index in indices})


class AttemptLedger:
    """Per-(map call, task) attempt counters persisted as marker files.

    File-based so counters survive worker death and are shared between the
    parent and every worker process; one file per attempt keeps the record
    append-only (no read-modify-write races between a dying worker and its
    replacement).
    """

    def __init__(self, state_dir: os.PathLike):
        self.state_dir = Path(state_dir)

    def record(self, scope: str, index: int) -> int:
        """Register one invocation of task ``index`` and return its attempt number."""
        directory = self.state_dir / scope
        directory.mkdir(parents=True, exist_ok=True)
        attempt = 1 + len(list(directory.glob(f"task-{index}.attempt-*")))
        (directory / f"task-{index}.attempt-{attempt}").touch()
        return attempt

    def attempts(self, scope: str, index: int) -> int:
        """How many times task ``index`` was invoked in ``scope``."""
        directory = self.state_dir / scope
        if not directory.is_dir():
            return 0
        return len(list(directory.glob(f"task-{index}.attempt-*")))


@dataclass
class FaultyFunction:
    """Picklable task wrapper that applies a fault plan before the task body.

    Receives ``(index, payload)`` pairs (the injecting executor enumerates
    its tasks), records the attempt in the ledger, triggers any scheduled
    faults for ``(index, attempt)``, then runs the real function on the
    payload.
    """

    fn: Callable[[Any], Any]
    plan: FaultPlan
    ledger: AttemptLedger
    scope: str

    def __call__(self, indexed_task: Tuple[int, Any]) -> Any:
        index, task = indexed_task
        attempt = self.ledger.record(self.scope, index)
        for fault in self.plan.for_task(index):
            fault.trigger(index, attempt)
        return self.fn(task)


class FaultInjectingExecutor(Executor):
    """Wrap any executor so every ``map`` runs under a fault plan.

    With a ``retry_policy``, tasks retry transient injected faults in-worker
    (via :func:`map_with_retries`); worker-death faults are recovered one
    layer down by the process executor's pool rebuild.  Pass an instance
    straight into ``disclose(executor=...)`` or any harness accepting an
    executor to chaos-test a full pipeline.
    """

    def __init__(
        self,
        inner: Executor,
        plan: FaultPlan,
        state_dir: os.PathLike,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if not isinstance(inner, Executor):
            raise ValidationError(f"inner must be an Executor, got {type(inner).__name__}")
        self.inner = inner
        self.plan = plan
        self.ledger = AttemptLedger(state_dir)
        self.retry_policy = retry_policy
        self.name = f"chaos-{inner.name}"
        self.max_workers = inner.max_workers
        self._calls = 0
        self._lock = threading.Lock()

    @property
    def on_retry(self):
        """Crash-recovery resubmission hook, delegated to the wrapped executor.

        Orchestration layers set ``pool.on_retry`` on whatever executor they
        were handed; delegating keeps a chaos-wrapped pool's injected worker
        deaths visible as ``RETRYING`` snapshot events, exactly like an
        unwrapped pool's.
        """
        return self.inner.on_retry

    @on_retry.setter
    def on_retry(self, callback) -> None:
        self.inner.on_retry = callback

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        tasks = list(tasks)
        with self._lock:
            self._calls += 1
            scope = f"map-{self._calls}"
        faulty = FaultyFunction(fn, self.plan, self.ledger, scope)
        indexed = list(enumerate(tasks))
        if self.retry_policy is None:
            return self.inner.map(faulty, indexed, timeout=timeout)
        return map_with_retries(self.inner, faulty, indexed, self.retry_policy, timeout=timeout)

    def close(self) -> None:
        self.inner.close()


class FaultInjectingBackend(StoreBackend):
    """A :class:`StoreBackend` wrapper that fails or delays scripted calls.

    Parameters
    ----------
    inner:
        The real backend every non-failing call is delegated to.
    fail:
        Mapping ``method name -> call numbers`` (1-based, counted per
        method) on which the call raises ``exception`` *instead of*
        delegating.
    delay:
        Mapping ``method name -> seconds`` slept before every delegation —
        the lever for piling up in-flight requests in overload tests.
    exception:
        The type raised on scripted failures (default
        :class:`~repro.exceptions.TransientError`, so retry layers treat the
        fault as transient).
    """

    def __init__(
        self,
        inner: StoreBackend,
        fail: Optional[Mapping[str, Sequence[int]]] = None,
        delay: Optional[Mapping[str, float]] = None,
        exception: Type[BaseException] = TransientError,
    ):
        self.inner = inner
        self.fail = {method: set(calls) for method, calls in (fail or {}).items()}
        self.delay = dict(delay or {})
        self.exception = exception
        self.calls: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _before(self, method: str) -> None:
        with self._lock:
            count = self.calls.get(method, 0) + 1
            self.calls[method] = count
        seconds = self.delay.get(method)
        if seconds:
            time.sleep(seconds)
        if count in self.fail.get(method, ()):
            raise self.exception(f"injected store fault ({method} call {count})")

    def put(self, key: str, document: bytes, answers: bytes) -> None:
        self._before("put")
        self.inner.put(key, document, answers)

    def get_document(self, key: str) -> bytes:
        self._before("get_document")
        return self.inner.get_document(key)

    def get_answers(self, key: str) -> Optional[bytes]:
        self._before("get_answers")
        return self.inner.get_answers(key)

    def exists(self, key: str) -> bool:
        self._before("exists")
        return self.inner.exists(key)

    def delete(self, key: str) -> None:
        self._before("delete")
        self.inner.delete(key)

    def keys(self) -> List[str]:
        self._before("keys")
        return self.inner.keys()

    def fingerprint(self, key: str) -> Optional[str]:
        self._before("fingerprint")
        return self.inner.fingerprint(key)

    def describe(self) -> str:
        return f"fault-injecting({self.inner.describe()})"
