"""Sweep scheduling: worker-budget negotiation and the manager executor.

A parameter sweep stacks two layers of parallelism: the *outer* executor
fans combinations out (one process per combination under
``--executor process``/``"manager"``) while each combination's disclosure
can fan its per-level perturbation out over *inner* threads.  Without
coordination the two layers silently oversubscribe the host — ``8`` outer
processes each starting ``8`` inner threads is 64 runnable workers on an
8-core box.  :class:`WorkerBudget` negotiates the split: outer workers
times inner workers must fit the total slot budget, the result is a
deterministic :class:`BudgetPlan` recorded in the sweep's snapshot, and a
conflicting request raises a clear
:class:`~repro.exceptions.ValidationError` instead of thrashing.

:class:`ManagerExecutor` is the multi-worker fan-out backend behind the
same :func:`~repro.execution.executors.make_executor` registry
(``"manager"``): a :class:`multiprocessing.managers.SyncManager` owns the
task and result queues in its own server process, so a SIGKILL'd worker
cannot corrupt the queue state (unlike ``multiprocessing.Queue``'s
in-process feeder threads) — the parent simply detects the death,
respawns the worker, and resubmits whatever the victim had claimed.
Resubmissions are announced through the executor's ``on_retry`` hook,
which the snapshot layer renders as ``RETRYING`` events — a crash is
visible history, never a silent gap.

:class:`SweepScheduler` bundles the negotiated plan with executor
lifecycle: :meth:`SweepScheduler.scope` yields the outer executor sized to
the plan, and :attr:`SweepScheduler.plan` is what
:meth:`~repro.evaluation.sweep.ParameterSweep.run` stamps into the
:class:`~repro.evaluation.snapshot.SweepSnapshot`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Union

from repro.exceptions import TaskTimeoutError, ValidationError, WorkerCrashError
from repro.execution.executors import (
    Executor,
    ExecutorSpec,
    default_max_workers,
    executor_name,
    executor_scope,
)

#: Sentinel distinguishing "no result yet" from a ``None`` result.
_UNSET = object()

#: ``inner_workers`` spelling that asks the budget to hand every leftover
#: slot to the nested per-level perturbation threads.
AUTO_INNER = "auto"


@dataclass(frozen=True)
class BudgetPlan:
    """The negotiated worker split, recorded verbatim in the snapshot.

    ``outer_workers * inner_workers <= total`` always holds — the plan is
    only ever built by :meth:`WorkerBudget.plan`, which rejects anything
    else.
    """

    executor: str
    total: int
    outer_workers: int
    inner_workers: int

    def to_dict(self) -> dict:
        return {
            "executor": self.executor,
            "total": self.total,
            "outer_workers": self.outer_workers,
            "inner_workers": self.inner_workers,
        }


class WorkerBudget:
    """A fixed pool of worker slots shared by nested executors.

    Parameters
    ----------
    total:
        Total concurrently-runnable workers the host grants this run
        (default: the CPU count).  The outer combination executor and the
        per-combination inner threads negotiate their split out of this one
        number.
    """

    def __init__(self, total: Optional[int] = None):
        if total is None:
            total = default_max_workers()
        self.total = int(total)
        if self.total < 1:
            raise ValidationError(f"worker budget must be >= 1, got {total}")

    @classmethod
    def resolve(cls, budget: Union[None, int, "WorkerBudget"]) -> "WorkerBudget":
        """Accept a budget, a slot count, or ``None`` (CPU count)."""
        if isinstance(budget, WorkerBudget):
            return budget
        return cls(budget)

    def plan(
        self,
        executor: ExecutorSpec = None,
        outer_workers: Optional[int] = None,
        inner_workers: Union[None, int, str] = None,
    ) -> BudgetPlan:
        """Negotiate a deterministic outer x inner split under this budget.

        Parameters
        ----------
        executor:
            The outer executor spec (name, ``None`` for serial, or a live
            :class:`Executor` whose ``max_workers`` then counts as the
            requested outer width).
        outer_workers:
            Requested outer worker count (``--workers``).  ``None`` defaults
            to 1 for the serial executor and to the full budget for pool
            executors.
        inner_workers:
            Per-combination nested thread count.  ``None`` keeps the nested
            perturbation serial (1), :data:`AUTO_INNER` hands every leftover
            slot to the inner layer (``total // outer``), and an explicit
            count is validated against the budget.

        Raises
        ------
        ValidationError
            When ``outer_workers`` alone exceeds the budget, or the nested
            product ``outer * inner`` oversubscribes it.
        """
        name = executor_name(executor)
        if name == "serial":
            if outer_workers is not None and int(outer_workers) != 1:
                raise ValidationError(
                    f"executor 'serial' runs one combination at a time; "
                    f"--workers {outer_workers} requires --executor thread, process or manager"
                )
            outer = 1
        elif outer_workers is not None:
            outer = int(outer_workers)
        elif isinstance(executor, Executor):
            outer = int(executor.max_workers)
        else:
            outer = self.total
        if outer < 1:
            raise ValidationError(f"--workers must be >= 1, got {outer_workers}")
        if outer > self.total:
            raise ValidationError(
                f"--workers {outer} exceeds the worker budget of {self.total} slot(s); "
                f"lower --workers or raise --worker-budget"
            )
        if inner_workers is None:
            inner = 1
        elif inner_workers == AUTO_INNER:
            inner = max(1, self.total // outer)
        else:
            inner = int(inner_workers)
        if inner < 1:
            raise ValidationError(f"inner workers must be >= 1, got {inner_workers}")
        if outer * inner > self.total:
            raise ValidationError(
                f"nested executors oversubscribe the worker budget: {outer} outer "
                f"worker(s) x {inner} inner thread(s) = {outer * inner} slots, but the "
                f"budget is {self.total}; lower --workers/--inner-workers or raise "
                f"--worker-budget"
            )
        return BudgetPlan(
            executor=name, total=self.total, outer_workers=outer, inner_workers=inner
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerBudget(total={self.total})"


class SweepScheduler:
    """A negotiated plan plus the executor lifecycle that honours it.

    Parameters
    ----------
    executor:
        Outer executor spec — a name, ``None``, or a live instance (chaos
        tests pass a
        :class:`~repro.execution.faults.FaultInjectingExecutor` here).
    workers:
        Requested outer worker count (validated against the budget).
    inner_workers:
        Nested per-combination thread count (``None``, a count, or
        :data:`AUTO_INNER`).
    budget:
        Total slots (:class:`WorkerBudget`, an int, or ``None`` for the
        CPU count).
    task_timeout:
        Per-combination wall-clock bound handed to the outer executor.
    """

    def __init__(
        self,
        executor: ExecutorSpec = None,
        workers: Optional[int] = None,
        inner_workers: Union[None, int, str] = None,
        budget: Union[None, int, WorkerBudget] = None,
        task_timeout: Optional[float] = None,
    ):
        self.budget = WorkerBudget.resolve(budget)
        self.plan = self.budget.plan(
            executor=executor, outer_workers=workers, inner_workers=inner_workers
        )
        self.task_timeout = task_timeout
        self._spec = executor

    @contextmanager
    def scope(self) -> Iterator[Executor]:
        """Yield the outer executor sized to the plan (closing what it opens)."""
        with executor_scope(
            self._spec,
            max_workers=self.plan.outer_workers,
            task_timeout=self.task_timeout,
        ) as pool:
            yield pool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepScheduler({self.plan!r})"


def _manager_worker(fn, task_queue, result_queue) -> None:
    """Worker loop (module-level so it survives fork and spawn starts).

    Announces ``("started", index, pid)`` *before* running the task body, so
    the parent knows which task a dead worker took down with it; a ``None``
    sentinel ends the loop.
    """
    pid = os.getpid()
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, payload = item
        result_queue.put(("started", index, pid))
        try:
            result = fn(payload)
        except BaseException as error:  # noqa: BLE001 - reported to the parent
            try:
                result_queue.put(("error", index, error))
            except Exception:  # unpicklable exception: degrade to its repr
                result_queue.put(("error", index, RuntimeError(repr(error))))
        else:
            try:
                result_queue.put(("done", index, result))
            except Exception as error:  # unpicklable result
                result_queue.put(
                    ("error", index, RuntimeError(f"unpicklable task result: {error!r}"))
                )


class ManagerExecutor(Executor):
    """Multi-worker fan-out over a :class:`multiprocessing.Manager` task queue.

    The manager's server process owns both queues, so worker death never
    corrupts queue state: the parent detects the dead process, respawns a
    replacement, and resubmits the tasks the victim had claimed (announced
    via ``on_retry`` so the sweep snapshot shows them as ``RETRYING``).
    Results come back keyed by submission index, so the map is
    order-preserving and — tasks being pure functions of their payload —
    bit-identical to a serial run.

    Task functions and payloads must be picklable, exactly as for
    :class:`~repro.execution.executors.ProcessExecutor`.  Because pure
    tasks are idempotent, the recovery path tolerates (rare) duplicate
    execution around a crash: a second result for the same index simply
    overwrites the first with identical bytes.
    """

    name = "manager"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_pool_rebuilds: int = 2,
    ):
        self.max_workers = int(max_workers) if max_workers is not None else default_max_workers()
        if self.max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        if max_pool_rebuilds < 0:
            raise ValidationError(f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}")
        self.task_timeout = task_timeout
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self._manager = None

    def _ensure_manager(self):
        if self._manager is None:
            self._manager = multiprocessing.Manager()
        return self._manager

    def _spawn(self, fn, task_queue, result_queue) -> multiprocessing.Process:
        worker = multiprocessing.Process(
            target=_manager_worker, args=(fn, task_queue, result_queue), daemon=True
        )
        worker.start()
        return worker

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        timeout = timeout if timeout is not None else self.task_timeout
        manager = self._ensure_manager()
        task_queue = manager.Queue()
        result_queue = manager.Queue()
        for index, payload in enumerate(tasks):
            task_queue.put((index, payload))
        pool_width = min(self.max_workers, len(tasks))
        workers = [self._spawn(fn, task_queue, result_queue) for _ in range(pool_width)]

        results: List[Any] = [_UNSET] * len(tasks)
        pending: Set[int] = set(range(len(tasks)))
        started: Dict[int, float] = {}
        owner: Dict[int, int] = {}
        rebuilds = 0
        try:
            while pending:
                try:
                    message = result_queue.get(timeout=0.05)
                except queue_module.Empty:
                    message = None
                if message is not None:
                    kind, index, payload = message
                    if kind == "started":
                        started[index] = time.monotonic()
                        owner[index] = payload
                    elif kind == "done":
                        results[index] = payload
                        pending.discard(index)
                        started.pop(index, None)
                        owner.pop(index, None)
                    else:  # "error": fail fast, exactly like the pool executors
                        if isinstance(payload, BaseException):
                            raise payload
                        raise RuntimeError(f"task {index} failed: {payload!r}")
                    continue
                if timeout is not None:
                    now = time.monotonic()
                    for index, begun in started.items():
                        if index in pending and now - begun > timeout:
                            raise TaskTimeoutError(
                                f"task {index} did not finish within {timeout}s",
                                task_index=index,
                                timeout=timeout,
                            )
                dead = [worker for worker in workers if not worker.is_alive()]
                if dead:
                    workers = [worker for worker in workers if worker.is_alive()]
                    dead_pids = {worker.pid for worker in dead}
                    lost = sorted(
                        index for index in pending if owner.get(index) in dead_pids
                    )
                    if not workers and not lost:
                        # Nothing alive and no claimed tasks: resubmit every
                        # unowned pending task (duplicates are benign — tasks
                        # are pure — and this closes the tiny claim window).
                        lost = sorted(index for index in pending if index not in owner)
                    rebuilds += 1
                    if rebuilds > self.max_pool_rebuilds:
                        raise WorkerCrashError(
                            f"manager worker pool broke {rebuilds} times; "
                            f"{len(pending)} task(s) never completed",
                            unfinished=sorted(pending),
                        )
                    for index in lost:
                        started.pop(index, None)
                        owner.pop(index, None)
                        task_queue.put((index, tasks[index]))
                    if lost and self.on_retry is not None:
                        self.on_retry(lost)
                    while len(workers) < min(self.max_workers, max(1, len(pending))):
                        workers.append(self._spawn(fn, task_queue, result_queue))
        except BaseException:
            for worker in workers:
                worker.terminate()
            for worker in workers:
                worker.join(timeout=1.0)
            raise
        for _ in workers:
            task_queue.put(None)
        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
        return results

    def close(self) -> None:
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
