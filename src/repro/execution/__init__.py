"""Execution backends: where the pipeline's independent work actually runs.

The disclosure core and the evaluation harnesses express parallelisable work
(per-level perturbation, per-trial Monte-Carlo runs, per-combination sweep
rows) as pure functions mapped over task payloads; the classes here decide
whether that map runs serially, on a thread pool, or across processes — with
bit-identical results in all three cases (see
:mod:`repro.execution.executors` for the determinism contract).
"""

from repro.execution.executors import (
    EXECUTOR_NAMES,
    Executor,
    ExecutorSpec,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    check_executor_name,
    default_max_workers,
    executor_name,
    executor_scope,
    make_executor,
)

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "ExecutorSpec",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "check_executor_name",
    "default_max_workers",
    "executor_name",
    "executor_scope",
    "make_executor",
]
