"""Execution backends: where the pipeline's independent work actually runs.

The disclosure core and the evaluation harnesses express parallelisable work
(per-level perturbation, per-trial Monte-Carlo runs, per-combination sweep
rows) as pure functions mapped over task payloads; the classes here decide
whether that map runs serially, on a thread pool, or across processes — with
bit-identical results in all three cases (see
:mod:`repro.execution.executors` for the determinism contract).

Fault tolerance lives alongside: :mod:`repro.execution.retry` retries
transient task failures with deterministic backoff, the pool executors
enforce per-task timeouts and rebuild broken process pools, and
:mod:`repro.execution.faults` injects scripted failures to prove that a
disturbed run is bit-identical to an undisturbed one.  (``faults`` is not
re-exported here — it imports the store layer, and the execution package
must stay importable from the core pipeline without cycles.)
"""

from repro.execution.executors import (
    EXECUTOR_NAMES,
    Executor,
    ExecutorSpec,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    check_executor_name,
    default_max_workers,
    executor_name,
    executor_scope,
    make_executor,
)
from repro.execution.retry import (
    DEFAULT_RETRYABLE,
    RetryPolicy,
    RetryingTask,
    map_with_retries,
)
from repro.execution.scheduler import (
    AUTO_INNER,
    BudgetPlan,
    ManagerExecutor,
    SweepScheduler,
    WorkerBudget,
)

__all__ = [
    "AUTO_INNER",
    "EXECUTOR_NAMES",
    "DEFAULT_RETRYABLE",
    "BudgetPlan",
    "Executor",
    "ExecutorSpec",
    "ManagerExecutor",
    "SerialExecutor",
    "SweepScheduler",
    "ThreadExecutor",
    "ProcessExecutor",
    "RetryPolicy",
    "RetryingTask",
    "WorkerBudget",
    "check_executor_name",
    "default_max_workers",
    "executor_name",
    "executor_scope",
    "make_executor",
    "map_with_retries",
]
