"""Pluggable parallel executors for the disclosure and evaluation pipelines.

Every independent unit of work in the library — per-level noise injection,
per-trial Monte-Carlo runs, per-combination sweep rows — is expressed as a
pure function mapped over a list of task payloads.  An :class:`Executor`
decides *where* that map runs:

* :class:`SerialExecutor` — in the calling thread, one task after another
  (the default, and the semantics every parallel backend must reproduce);
* :class:`ThreadExecutor` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (useful when tasks release the GIL in NumPy kernels);
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  for CPU-bound fan-out across cores.

Determinism contract
--------------------
``Executor.map`` always returns results **in submission order**, and task
functions must carry their own random state (a picklable
:class:`numpy.random.SeedSequence` derived per task via
:func:`repro.utils.rng.derive_seedseq`) rather than sharing a sequentially
mutated generator.  Under that contract the three executors are bit-for-bit
interchangeable: ``tests/test_engine_parity.py`` locks serial, thread and
process disclosures to identical releases for the same seed.

Process caveats
---------------
:class:`ProcessExecutor` pickles the task function and every payload, so task
functions must be module-level callables (or :func:`functools.partial` over
one) and payloads must be picklable.  Nested process pools are not spawned:
code running inside a worker should use :class:`SerialExecutor`.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ValidationError

#: Names accepted wherever an executor is selected by string.
EXECUTOR_NAMES: Tuple[str, ...] = ("serial", "thread", "process")

#: The union of types accepted wherever the library takes an executor.
ExecutorSpec = Union[None, str, "Executor"]


def default_max_workers() -> int:
    """Worker count used when none is configured (CPU count, floor 1)."""
    return max(1, os.cpu_count() or 1)


class Executor(abc.ABC):
    """Maps a function over task payloads, preserving submission order."""

    #: Name reported in configs and benchmark artefacts.
    name: str = "abstract"

    @abc.abstractmethod
    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every task and return the results in task order."""

    def close(self) -> None:
        """Release any worker pool (idempotent; the serial executor is a no-op)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every task inline in the calling thread.

    The reference semantics: parallel executors must produce exactly the
    results a :class:`SerialExecutor` produces for the same tasks.
    """

    name = "serial"

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        return [fn(task) for task in tasks]


class ThreadExecutor(Executor):
    """Fan tasks out over a lazily created thread pool.

    Threads share the interpreter, so payloads are not pickled and task
    functions may close over arbitrary state; speedups come from NumPy
    kernels that release the GIL.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = int(max_workers) if max_workers is not None else default_max_workers()
        if self._max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        if len(tasks) == 1:  # skip pool dispatch for a single task
            return [fn(tasks[0])]
        return list(self._ensure_pool().map(fn, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Fan tasks out over a lazily created process pool.

    Task functions must be picklable module-level callables and payloads
    must be picklable.  Results come back in submission order, so a
    process-parallel run is indistinguishable from a serial one as long as
    tasks carry their own derived random state.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = int(max_workers) if max_workers is not None else default_max_workers()
        if self._max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def max_workers(self) -> int:
        """Configured pool size."""
        return self._max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        # No single-task inline shortcut here (unlike ThreadExecutor): it
        # would skip pickling and let a non-picklable task succeed at n==1
        # only to fail when the task count grows — the contract must be
        # enforced uniformly.
        tasks = list(tasks)
        if not tasks:
            return []
        chunksize = max(1, len(tasks) // (self._max_workers * 4))
        return list(self._ensure_pool().map(fn, tasks, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def check_executor_name(value: Any, name: str = "executor") -> str:
    """Validate an executor selector string."""
    if value not in EXECUTOR_NAMES:
        raise ValidationError(f"{name} must be one of {EXECUTOR_NAMES}, got {value!r}")
    return value


def executor_name(spec: ExecutorSpec) -> str:
    """Canonical name of an executor spec (``None`` means serial).

    Used to record execution provenance (e.g. in a release's ``config``)
    from whatever the caller actually passed — a name, ``None``, or a live
    :class:`Executor` instance.
    """
    if isinstance(spec, Executor):
        return spec.name
    if spec is None:
        return "serial"
    return check_executor_name(spec)


def make_executor(spec: ExecutorSpec = None, max_workers: Optional[int] = None) -> Executor:
    """Build an executor from a name, ``None`` (serial) or an existing instance.

    Parameters
    ----------
    spec:
        ``None`` / ``"serial"``, ``"thread"``, ``"process"`` or an
        :class:`Executor` (returned unchanged; ``max_workers`` is ignored).
    max_workers:
        Pool size for the thread/process executors (defaults to the CPU count).
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None or spec == "serial":
        return SerialExecutor()
    check_executor_name(spec)
    if spec == "thread":
        return ThreadExecutor(max_workers=max_workers)
    return ProcessExecutor(max_workers=max_workers)


@contextmanager
def executor_scope(
    spec: ExecutorSpec = None, max_workers: Optional[int] = None
) -> Iterator[Executor]:
    """Context manager resolving ``spec`` and closing only pools it created.

    An :class:`Executor` *instance* passed in stays open (the caller owns its
    lifecycle); a name spec gets a fresh executor that is closed on exit.
    """
    if isinstance(spec, Executor):
        yield spec
        return
    executor = make_executor(spec, max_workers=max_workers)
    try:
        yield executor
    finally:
        executor.close()
