"""Pluggable parallel executors for the disclosure and evaluation pipelines.

Every independent unit of work in the library — per-level noise injection,
per-trial Monte-Carlo runs, per-combination sweep rows — is expressed as a
pure function mapped over a list of task payloads.  An :class:`Executor`
decides *where* that map runs:

* :class:`SerialExecutor` — in the calling thread, one task after another
  (the default, and the semantics every parallel backend must reproduce);
* :class:`ThreadExecutor` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (useful when tasks release the GIL in NumPy kernels);
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  for CPU-bound fan-out across cores.

Determinism contract
--------------------
``Executor.map`` always returns results **in submission order**, and task
functions must carry their own random state (a picklable
:class:`numpy.random.SeedSequence` derived per task via
:func:`repro.utils.rng.derive_seedseq`) rather than sharing a sequentially
mutated generator.  Under that contract the three executors are bit-for-bit
interchangeable: ``tests/test_engine_parity.py`` locks serial, thread and
process disclosures to identical releases for the same seed.

Fault tolerance
---------------
The pool executors accept a per-task ``task_timeout`` (either at
construction or per ``map`` call): a task that does not finish in time
raises :class:`~repro.exceptions.TaskTimeoutError` and the remaining
submissions are cancelled, so a stuck worker can never hang a sweep forever.
:class:`ProcessExecutor` additionally survives **worker death**: when the
pool breaks (a worker segfaults or is OOM-killed) it harvests every result
that already completed, rebuilds the pool, and resubmits only the unfinished
tasks — because tasks are pure functions of their payload, the recovered run
is bit-identical to an undisturbed one.  Retries for transient in-task
exceptions live one layer up in :mod:`repro.execution.retry`.

Process caveats
---------------
:class:`ProcessExecutor` pickles the task function and every payload, so task
functions must be module-level callables (or :func:`functools.partial` over
one) and payloads must be picklable.  Nested process pools are not spawned:
code running inside a worker should use :class:`SerialExecutor`.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.exceptions import TaskTimeoutError, ValidationError, WorkerCrashError

#: Names accepted wherever an executor is selected by string.  ``"manager"``
#: resolves to :class:`repro.execution.scheduler.ManagerExecutor` (imported
#: lazily by :func:`make_executor` to keep this module cycle-free).
EXECUTOR_NAMES: Tuple[str, ...] = ("serial", "thread", "process", "manager")

#: The union of types accepted wherever the library takes an executor.
ExecutorSpec = Union[None, str, "Executor"]

#: Sentinel distinguishing "no result yet" from a ``None`` result.
_UNSET = object()


def default_max_workers() -> int:
    """Worker count used when none is configured (CPU count, floor 1)."""
    return max(1, os.cpu_count() or 1)


class Executor(abc.ABC):
    """Maps a function over task payloads, preserving submission order."""

    #: Name reported in configs and benchmark artefacts.
    name: str = "abstract"

    #: Concurrent task slots (1 for serial; used to size checkpoint chunks).
    max_workers: int = 1

    #: Optional observer hook: crash-recovering executors call this with the
    #: wave-local indices of tasks being resubmitted after worker death, so
    #: orchestration layers can surface a retry (``RETRYING`` in the sweep
    #: snapshot) instead of a silent gap.  ``None`` disables the callback.
    on_retry: Optional[Callable[[List[int]], None]] = None

    @abc.abstractmethod
    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        """Apply ``fn`` to every task and return the results in task order.

        ``timeout`` bounds each task's wall-clock seconds where the backend
        can enforce it (the serial executor runs inline and cannot preempt).
        """

    def close(self) -> None:
        """Release any worker pool (idempotent; the serial executor is a no-op)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every task inline in the calling thread.

    The reference semantics: parallel executors must produce exactly the
    results a :class:`SerialExecutor` produces for the same tasks.  Per-task
    timeouts are accepted but not enforced — inline execution cannot be
    preempted.
    """

    name = "serial"
    max_workers = 1

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        return [fn(task) for task in tasks]


def _collect_in_order(
    futures: "Dict[int, Future]",
    results: List[Any],
    timeout: Optional[float],
) -> None:
    """Drain futures into ``results`` by task index, failing fast.

    On any failure — a task exception or a per-task timeout — every
    not-yet-running future is cancelled before the error propagates, so the
    pool can be closed promptly on exception paths instead of draining a
    queue of doomed work.
    """
    try:
        for index, future in futures.items():
            try:
                results[index] = future.result(timeout=timeout)
            except FutureTimeoutError:
                raise TaskTimeoutError(
                    f"task {index} did not finish within {timeout}s",
                    task_index=index,
                    timeout=timeout,
                ) from None
    except BaseException:
        for future in futures.values():
            future.cancel()
        raise


class ThreadExecutor(Executor):
    """Fan tasks out over a lazily created thread pool.

    Threads share the interpreter, so payloads are not pickled and task
    functions may close over arbitrary state; speedups come from NumPy
    kernels that release the GIL.  A per-task ``task_timeout`` raises
    :class:`TaskTimeoutError`; the timed-out thread itself cannot be killed,
    so the pool is replaced on the next use rather than joined.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None, task_timeout: Optional[float] = None):
        self.max_workers = int(max_workers) if max_workers is not None else default_max_workers()
        if self.max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.task_timeout = task_timeout
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        timeout = timeout if timeout is not None else self.task_timeout
        if len(tasks) == 1 and timeout is None:  # skip pool dispatch for a single task
            return [fn(tasks[0])]
        pool = self._ensure_pool()
        futures = {index: pool.submit(fn, task) for index, task in enumerate(tasks)}
        results: List[Any] = [_UNSET] * len(tasks)
        try:
            _collect_in_order(futures, results, timeout)
        except TaskTimeoutError:
            # The stuck thread cannot be joined without hanging the caller:
            # abandon the pool (shutdown without waiting) and lazily build a
            # fresh one, so the executor stays usable after a timeout.
            self._pool = None
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Fan tasks out over a lazily created process pool.

    Task functions must be picklable module-level callables and payloads
    must be picklable.  Results come back in submission order, so a
    process-parallel run is indistinguishable from a serial one as long as
    tasks carry their own derived random state.

    Worker death does not fail the map: completed results are harvested from
    the broken pool, the pool is rebuilt, and only unfinished tasks are
    resubmitted (up to ``max_pool_rebuilds`` times per map call) — tasks are
    pure, so the recovered results are bit-identical.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_pool_rebuilds: int = 2,
    ):
        self.max_workers = int(max_workers) if max_workers is not None else default_max_workers()
        if self.max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        if max_pool_rebuilds < 0:
            raise ValidationError(f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}")
        self.task_timeout = task_timeout
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        # No single-task inline shortcut here (unlike ThreadExecutor): it
        # would skip pickling and let a non-picklable task succeed at n==1
        # only to fail when the task count grows — the contract must be
        # enforced uniformly.
        tasks = list(tasks)
        if not tasks:
            return []
        timeout = timeout if timeout is not None else self.task_timeout
        results: List[Any] = [_UNSET] * len(tasks)
        pending = list(range(len(tasks)))
        rebuilds = 0
        while pending:
            pool = self._ensure_pool()
            futures = {index: pool.submit(fn, tasks[index]) for index in pending}
            try:
                _collect_in_order(futures, results, timeout)
            except (BrokenProcessPool, CancelledError):
                # A worker died. Harvest everything that did finish, then
                # rebuild the pool and resubmit only the unfinished tasks.
                for index, future in futures.items():
                    if future.done() and not future.cancelled() and future.exception() is None:
                        results[index] = future.result()
                self._discard_pool()
                pending = [index for index in pending if results[index] is _UNSET]
                rebuilds += 1
                if rebuilds > self.max_pool_rebuilds:
                    raise WorkerCrashError(
                        f"process pool broke {rebuilds} times; "
                        f"{len(pending)} task(s) never completed",
                        unfinished=pending,
                    ) from None
                if pending and self.on_retry is not None:
                    self.on_retry(list(pending))
                continue
            except TaskTimeoutError:
                # The stuck worker would poison later maps: drop the pool.
                self._discard_pool()
                raise
            pending = []
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def check_executor_name(value: Any, name: str = "executor") -> str:
    """Validate an executor selector string."""
    if value not in EXECUTOR_NAMES:
        raise ValidationError(f"{name} must be one of {EXECUTOR_NAMES}, got {value!r}")
    return value


def executor_name(spec: ExecutorSpec) -> str:
    """Canonical name of an executor spec (``None`` means serial).

    Used to record execution provenance (e.g. in a release's ``config``)
    from whatever the caller actually passed — a name, ``None``, or a live
    :class:`Executor` instance.
    """
    if isinstance(spec, Executor):
        return spec.name
    if spec is None:
        return "serial"
    return check_executor_name(spec)


def make_executor(
    spec: ExecutorSpec = None,
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> Executor:
    """Build an executor from a name, ``None`` (serial) or an existing instance.

    Parameters
    ----------
    spec:
        ``None`` / ``"serial"``, ``"thread"``, ``"process"``, ``"manager"``
        or an :class:`Executor` (returned unchanged; the other arguments are
        ignored).
    max_workers:
        Pool size for the thread/process executors (defaults to the CPU count).
    task_timeout:
        Per-task wall-clock bound in seconds for the pool executors
        (``None`` disables; the serial executor cannot enforce one).
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None or spec == "serial":
        return SerialExecutor()
    check_executor_name(spec)
    if spec == "thread":
        return ThreadExecutor(max_workers=max_workers, task_timeout=task_timeout)
    if spec == "manager":
        # Imported lazily: scheduler.py imports this module, so a top-level
        # import here would be circular.
        from repro.execution.scheduler import ManagerExecutor

        return ManagerExecutor(max_workers=max_workers, task_timeout=task_timeout)
    return ProcessExecutor(max_workers=max_workers, task_timeout=task_timeout)


def _check_worker_budget(
    spec: ExecutorSpec, max_workers: Optional[int], budget: Any
) -> None:
    """Reject an executor request that would oversubscribe a worker budget.

    ``budget`` is an int or any object with a ``total`` attribute (e.g. a
    :class:`repro.execution.scheduler.WorkerBudget` — duck-typed so this
    module stays import-cycle-free).  Without this check a ``--workers``
    value above the budget used to be honoured silently; now it is a
    :class:`ValidationError` before any pool is built.
    """
    total = getattr(budget, "total", budget)
    total = int(total)
    if total < 1:
        raise ValidationError(f"worker budget must be >= 1, got {total}")
    if isinstance(spec, Executor):
        requested = int(spec.max_workers)
    elif spec is None or spec == "serial":
        requested = 1
    elif max_workers is not None:
        requested = int(max_workers)
    else:
        requested = default_max_workers()
    if requested > total:
        raise ValidationError(
            f"--workers {requested} exceeds the worker budget of {total} slot(s); "
            f"lower --workers or raise --worker-budget"
        )


@contextmanager
def executor_scope(
    spec: ExecutorSpec = None,
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    budget: Any = None,
) -> Iterator[Executor]:
    """Context manager resolving ``spec`` and closing only pools it created.

    An :class:`Executor` *instance* passed in stays open (the caller owns its
    lifecycle); a name spec gets a fresh executor that is closed on exit —
    including exception exits, where any work the failure already cancelled
    (see the executors' fail-fast cancellation) keeps the close prompt.

    ``budget`` (an int or an object with a ``total`` attribute) caps the
    worker count this scope may request: exceeding it raises
    :class:`ValidationError` instead of silently oversubscribing the host.
    """
    if budget is not None:
        _check_worker_budget(spec, max_workers, budget)
    if isinstance(spec, Executor):
        yield spec
        return
    executor = make_executor(spec, max_workers=max_workers, task_timeout=task_timeout)
    try:
        yield executor
    finally:
        executor.close()
