"""Deterministic retries with exponential backoff for executor tasks.

A :class:`RetryPolicy` describes *when* a failed task may run again (a
retryable-exception filter and an attempt budget) and *how long* to wait
between attempts (exponential backoff with deterministic, seed-derived
jitter).  :func:`map_with_retries` applies the policy around any
:class:`~repro.execution.executors.Executor`: each task retries **inside its
own worker invocation**, so transient faults never change which worker runs
which task or the order results come back in.

Determinism contract
--------------------
Retries must never be able to change a released artefact.  Two properties
guarantee that:

* a task function carries its own derived seed material (see the executor
  contract), so re-invoking it with the same payload reproduces the same
  result bit for bit;
* the backoff jitter is **derived, not drawn** — a pure hash of
  ``(policy seed, task key, attempt)`` — so the retry schedule itself is
  reproducible and consumes no shared random state.

The module is deliberately stdlib-only (no numpy, no disclosure imports), so
the read-only serving client can reuse :class:`RetryPolicy` without pulling
anything budget-spending onto the request path.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Tuple, Type

from repro.exceptions import TaskTimeoutError, TransientError, ValidationError

#: Exception types retried by default: injected/transient faults, task
#: timeouts, and OS-level IO errors (which include ``ConnectionError`` and
#: the builtin ``TimeoutError``).
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientError,
    TaskTimeoutError,
    OSError,
)


def _fraction(seed: int, key: str, attempt: int) -> float:
    """A deterministic uniform-in-[0, 1) fraction for jitter.

    Pure function of ``(seed, key, attempt)`` — no shared generator is
    advanced, so the jitter schedule cannot interact with any other
    randomness in the system.
    """
    digest = hashlib.sha256(f"{seed}|{key}|{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """When and how to retry a failed task.

    Parameters
    ----------
    max_attempts:
        Total invocations allowed per task (1 disables retries).
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per further attempt (exponential backoff).
    max_backoff:
        Upper bound on any single delay, in seconds.
    jitter:
        Fraction of the delay added as deterministic jitter: the actual
        delay is ``delay * (1 + jitter * u)`` with ``u`` derived from
        ``(seed, task key, attempt)``.
    retryable:
        Exception types that may be retried; anything else propagates
        immediately.
    seed:
        Seed for the derived jitter stream.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 5.0
    jitter: float = 0.1
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise ValidationError("backoff_base and max_backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValidationError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")

    def is_retryable(self, error: BaseException) -> bool:
        """Whether the policy allows retrying after ``error``."""
        return isinstance(error, self.retryable)

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before ``attempt`` (the second attempt is 2).

        Deterministic: the same policy, key and attempt always produce the
        same delay.
        """
        if attempt <= 1:
            return 0.0
        delay = min(self.max_backoff, self.backoff_base * self.backoff_factor ** (attempt - 2))
        return delay * (1.0 + self.jitter * _fraction(self.seed, key, attempt))

    def call(
        self,
        fn: Callable[[], Any],
        key: str = "",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Invoke ``fn`` under the policy, re-raising the last failure.

        ``sleep`` is injectable for tests; ``on_retry(attempt, error)`` is
        called before each re-attempt.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as error:  # noqa: BLE001 - filtered just below
                if attempt >= self.max_attempts or not self.is_retryable(error):
                    raise
                delay = self.delay_for(attempt + 1, key=key)
                if on_retry is not None:
                    on_retry(attempt, error)
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def to_dict(self) -> dict:
        """JSON-serialisable provenance record."""
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "max_backoff": self.max_backoff,
            "jitter": self.jitter,
            "seed": self.seed,
            "retryable": [cls.__name__ for cls in self.retryable],
        }


@dataclass
class RetryingTask:
    """A picklable task wrapper that retries ``fn`` inside the worker.

    Because the retry loop runs where the task runs, transient faults are
    absorbed without any round-trip through the parent process — the executor
    still sees one submission per task and returns results in order, and a
    process-parallel retried run stays bit-identical to a fault-free one.
    """

    fn: Callable[[Any], Any]
    policy: RetryPolicy
    attempts: List[int] = field(default_factory=list)

    def __call__(self, task: Any) -> Any:
        counter = {"n": 0}

        def attempt_once():
            counter["n"] += 1
            return self.fn(task)

        try:
            return self.policy.call(attempt_once, key=repr(task))
        finally:
            self.attempts.append(counter["n"])


def map_with_retries(
    executor,
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
) -> List[Any]:
    """``executor.map`` with per-task in-worker retries under ``policy``.

    Transient task failures (as classified by ``policy.retryable``) are
    retried inside the worker; worker *death* is handled one layer down by
    the process executor's pool-rebuild recovery, so the two mechanisms
    compose: exceptions retry in place, crashes resubmit unfinished tasks,
    and both leave the results bit-identical to an undisturbed run.
    """
    policy = policy if policy is not None else RetryPolicy()
    wrapped = RetryingTask(fn, policy)
    return executor.map(wrapped, tasks, timeout=timeout)
