"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Errors are grouped by the subsystem that raises
them (graphs, privacy, grouping, disclosure, ...) to make failure modes easy
to distinguish in tests and applications.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong type, range, or structure)."""


class GraphError(ReproError):
    """Base class for errors raised by the bipartite-graph substrate."""


class NodeNotFoundError(GraphError, ValidationError, KeyError):
    """A referenced node does not exist in the graph.

    Also a :class:`ValidationError`: every graph-mutation error shares that
    shape, so callers (and the CLI's one-line error mapping) can treat a
    mutation against a missing node exactly like any other invalid argument.
    """

    def __init__(self, node, side=None):
        self.node = node
        self.side = side
        suffix = f" on side {side!r}" if side is not None else ""
        super().__init__(f"node {node!r} not found{suffix}")


class EdgeNotFoundError(GraphError, ValidationError, KeyError):
    """A referenced association (edge) does not exist in the graph.

    Also a :class:`ValidationError` — see :class:`NodeNotFoundError`.
    """

    def __init__(self, left, right):
        self.left = left
        self.right = right
        super().__init__(f"association ({left!r}, {right!r}) not found")


class DuplicateNodeError(GraphError, ValidationError):
    """A node was added twice (possibly on different sides).

    Also a :class:`ValidationError` — see :class:`NodeNotFoundError`.
    """

    def __init__(self, node):
        self.node = node
        super().__init__(f"node {node!r} already exists")


class PrivacyError(ReproError):
    """Base class for errors in privacy parameters or guarantees."""


class InvalidPrivacyParameterError(PrivacyError, ValueError):
    """An ``epsilon`` or ``delta`` value is outside its valid range."""


class BudgetExceededError(PrivacyError):
    """A privacy-budget ledger would be overdrawn by the requested spend."""

    def __init__(self, requested, remaining):
        self.requested = requested
        self.remaining = remaining
        super().__init__(
            f"requested privacy spend {requested} exceeds remaining budget {remaining}"
        )


class SensitivityError(PrivacyError, ValueError):
    """A sensitivity value is missing, non-finite, or inconsistent."""


class GroupingError(ReproError):
    """Base class for errors in partitions, hierarchies, and specialization."""


class InvalidPartitionError(GroupingError, ValueError):
    """A partition does not cover the universe or has overlapping groups."""


class HierarchyError(GroupingError, ValueError):
    """A group hierarchy violates its structural invariants."""


class SpecializationError(GroupingError):
    """The specialization (recursive split) procedure could not proceed."""


class DisclosureError(ReproError):
    """Base class for errors raised by the multi-level disclosure pipeline."""


class AccessLevelError(DisclosureError, KeyError):
    """A requested access/information level does not exist in a release."""

    def __init__(self, level, available):
        self.level = level
        self.available = tuple(available)
        super().__init__(
            f"access level {level!r} not available; release has levels {sorted(self.available)}"
        )


class ReleaseIntegrityError(DisclosureError):
    """A release object is internally inconsistent (tampering or bug)."""


class ExecutionError(ReproError):
    """Base class for errors raised by the parallel execution layer."""


class TransientError(ExecutionError):
    """A failure the caller may safely retry (injected faults, flaky IO).

    Raising this (or any exception type listed in a
    :class:`~repro.execution.retry.RetryPolicy`'s ``retryable`` filter) marks
    a task failure as transient: re-running the task with the same payload is
    expected to succeed and — because tasks carry their own derived seed
    material — to produce exactly the result the fault-free run would have.
    """


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task timeout.

    Raised by the thread/process executors when a task does not finish within
    the configured ``task_timeout``.  Retryable by default: a timeout is
    usually a stuck worker or transient resource contention, and re-running a
    pure seeded task cannot change its result.
    """

    def __init__(self, message, task_index=None, timeout=None):
        self.task_index = task_index
        self.timeout = timeout
        super().__init__(message)


class WorkerCrashError(ExecutionError):
    """A worker pool broke (worker death) and could not be rebuilt.

    The process executor rebuilds its pool and resubmits unfinished tasks
    when a worker dies; this is raised only after the rebuild budget is
    exhausted, with the indices of the tasks that never completed.
    """

    def __init__(self, message, unfinished=()):
        self.unfinished = tuple(unfinished)
        super().__init__(message)


class SweepInterrupted(ExecutionError):
    """A journaled sweep stopped early under the ``fail_fast`` error policy.

    The journal records the failed combination (with error detail) and every
    completed row, so a re-run resumes from the checkpoint instead of
    restarting.
    """


class ServingError(ReproError):
    """A serving-layer request failed (connection error or non-200 response)."""

    def __init__(self, message, status=None, body=None):
        self.status = status
        self.body = body
        super().__init__(message)


class DatasetError(ReproError):
    """Base class for dataset-generation and loading errors."""


class EvaluationError(ReproError):
    """Base class for errors raised by the evaluation harness."""
