"""Random-number-generator plumbing.

Every randomized component in the library accepts a ``rng`` argument that may
be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`as_rng` normalises all three into a
``Generator`` so downstream code never branches on the type.

Derived generators (:func:`derive_rng`, :func:`spawn_rngs`) are used when a
single seed must drive several independent stochastic components (e.g. the
specialization phase and the noise-injection phase of the disclosure
pipeline) without the components' draws interleaving.  Derivation is
deterministic: the same parent seed and the same key always produce the same
child stream, which keeps experiments reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Union

import numpy as np

#: The union of types accepted wherever the library takes a random state.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(rng: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted random state.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).

    Examples
    --------
    >>> g1 = as_rng(42)
    >>> g2 = as_rng(42)
    >>> float(g1.uniform()) == float(g2.uniform())
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence or a Generator, got {type(rng)!r}"
    )


def _key_to_int(key: str) -> int:
    """Map an arbitrary string key to a stable 64-bit integer."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_seedseq(rng: RandomState, key: str) -> np.random.SeedSequence:
    """Derive the :class:`~numpy.random.SeedSequence` behind :func:`derive_rng`.

    A ``SeedSequence`` is plain seed *material*: picklable, cheap to copy, and
    derivable again with further keys.  The parallel execution layer passes
    these across process boundaries so every task can instantiate its own
    generator locally — two tasks keyed the same way produce identical
    streams whether they run serially, on threads, or in worker processes.

    Parameters
    ----------
    rng:
        Parent random state (``None`` yields fresh entropy).
    key:
        Arbitrary label identifying the consumer (e.g. ``"level-3"``).
    """
    key_int = _key_to_int(key)
    if rng is None:
        return np.random.SeedSequence()
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(entropy=int(rng), spawn_key=(key_int,))
    if isinstance(rng, np.random.SeedSequence):
        return np.random.SeedSequence(
            entropy=rng.entropy, spawn_key=tuple(rng.spawn_key) + (key_int,)
        )
    if isinstance(rng, np.random.Generator):
        seed = int(rng.integers(0, 2**63 - 1))
        return np.random.SeedSequence(entropy=seed, spawn_key=(key_int,))
    raise TypeError(f"unsupported rng type {type(rng)!r}")


def derive_rng(rng: RandomState, key: str) -> np.random.Generator:
    """Derive an independent generator keyed by ``key``.

    The derivation is deterministic with respect to the *seed material* of the
    parent: two calls with the same integer seed and the same key produce
    identical streams.  When the parent is an already-instantiated
    ``Generator`` the child is seeded from the parent's next raw draw, which
    is still reproducible if the parent itself was seeded.

    Parameters
    ----------
    rng:
        Parent random state.
    key:
        Arbitrary label identifying the consumer (e.g. ``"specialization"``).
    """
    if rng is None:
        return np.random.default_rng()
    return np.random.default_rng(derive_seedseq(rng, key))


def spawn_rngs(rng: RandomState, keys: Iterable[str]) -> List[np.random.Generator]:
    """Derive one independent generator per key, in key order.

    Unlike repeated :func:`derive_rng` calls on a ``Generator`` parent, this
    helper first normalises the parent into a seed so that each child depends
    only on (parent seed, key) and not on call order.
    """
    keys = list(keys)
    if isinstance(rng, np.random.Generator):
        parent_seed: Optional[int] = int(rng.integers(0, 2**63 - 1))
    elif isinstance(rng, (int, np.integer)):
        parent_seed = int(rng)
    elif isinstance(rng, np.random.SeedSequence):
        parent_seed = None
    elif rng is None:
        parent_seed = None
    else:
        raise TypeError(f"unsupported rng type {type(rng)!r}")

    if parent_seed is None and rng is None:
        return [np.random.default_rng() for _ in keys]
    base: RandomState = rng if isinstance(rng, np.random.SeedSequence) else parent_seed
    return [derive_rng(base, key) for key in keys]
