"""Small argument-validation helpers used across the library.

Each helper raises :class:`repro.exceptions.ValidationError` with a message
that names the offending parameter, and returns the (possibly coerced) value
so call sites can validate and assign in one statement::

    self.epsilon = check_positive(epsilon, "epsilon")
"""

from __future__ import annotations

import math
from typing import Any, Tuple, Type, Union

from repro.exceptions import ValidationError

Number = Union[int, float]

#: Execution engines accepted wherever the library takes an ``engine`` knob.
SUPPORTED_ENGINES: Tuple[str, ...] = ("reference", "vectorized")


def check_engine(value: Any, name: str = "engine") -> str:
    """Ensure ``value`` names a supported execution engine; return it."""
    if value not in SUPPORTED_ENGINES:
        raise ValidationError(f"{name} must be one of {SUPPORTED_ENGINES}, got {value!r}")
    return value


def check_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> Any:
    """Ensure ``value`` is an instance of ``types``; return it unchanged."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = ", ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise ValidationError(f"{name} must be of type {expected}, got {type(value).__name__}")
    return value


def _check_finite_number(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    return value


def check_positive(value: Number, name: str) -> float:
    """Ensure ``value`` is a finite number strictly greater than zero."""
    value = _check_finite_number(value, name)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: Number, name: str) -> float:
    """Ensure ``value`` is a finite number greater than or equal to zero."""
    value = _check_finite_number(value, name)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_positive_int(value: Any, name: str) -> int:
    """Ensure ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return int(value)


def check_probability(value: Number, name: str) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    value = _check_finite_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: Number, name: str) -> float:
    """Ensure ``value`` lies in the open interval (0, 1)."""
    value = _check_finite_number(value, name)
    if not 0.0 < value < 1.0:
        raise ValidationError(f"{name} must be in (0, 1), got {value}")
    return value
