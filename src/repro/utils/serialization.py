"""JSON serialization helpers.

Release objects, hierarchies and experiment results all support a
``to_dict()`` / ``from_dict()`` pair; the helpers here handle the last mile of
turning those dictionaries into files, converting NumPy scalars and arrays
into plain Python types along the way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable Python types.

    NumPy integers, floats, booleans and arrays are converted to their Python
    equivalents; sets and tuples become lists; dictionaries keep their keys
    (converted to ``str`` when they are not already JSON-safe).
    """
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, (int, float)):
        return obj
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if isinstance(key, (str, int, float, bool)) or key is None:
                json_key = key
            elif isinstance(key, (np.integer,)):
                json_key = int(key)
            elif isinstance(key, (np.floating,)):
                json_key = float(key)
            else:
                json_key = str(key)
            out[json_key] = to_jsonable(value)
        return out
    if hasattr(obj, "to_dict"):
        return to_jsonable(obj.to_dict())
    raise TypeError(f"object of type {type(obj).__name__} is not JSON-serialisable")


def canonical_json_bytes(obj: Any) -> bytes:
    """Deterministic JSON bytes: sorted keys, 2-space indent, trailing newline.

    The single definition of the canonical serialisation shared by the
    release store (stored documents) and the serving layer (HTTP responses):
    both sides using this one helper is what makes a stored release
    byte-identical across store backends and over the wire.
    """
    return (json.dumps(to_jsonable(obj), indent=2, sort_keys=True) + "\n").encode("utf-8")


def to_json_file(obj: Any, path: PathLike, indent: int = 2) -> Path:
    """Write ``obj`` (after :func:`to_jsonable` conversion) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def from_json_file(path: PathLike) -> Any:
    """Load a JSON document written by :func:`to_json_file`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)
