"""Shared utilities: RNG handling, validation helpers, serialization."""

from repro.utils.rng import (
    RandomState,
    as_rng,
    derive_rng,
    spawn_rngs,
)
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)
from repro.utils.serialization import (
    from_json_file,
    to_json_file,
    to_jsonable,
)

__all__ = [
    "RandomState",
    "as_rng",
    "derive_rng",
    "spawn_rngs",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_type",
    "from_json_file",
    "to_json_file",
    "to_jsonable",
]
