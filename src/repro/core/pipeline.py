"""The staged disclosure pipeline shared by the discloser and the baselines.

The paper's two-phase procedure decomposes into five explicit stages:

1. :class:`SpecializeStage` — build the group hierarchy (phase 1), unless the
   caller supplied one;
2. :class:`CompileStage` — compile the graph's array view (vectorized
   engine), resolve the released levels and evaluate the true workload
   answers once;
3. :class:`CalibrateStage` — compute each level's sensitivity and epsilon and
   freeze them into picklable :class:`LevelPlan` payloads, one per level,
   each carrying its own derived noise seed;
4. :class:`PerturbStage` — map :func:`perturb_level` over the plans through
   the configured :class:`~repro.execution.Executor` (levels are independent,
   so they parallelise freely — and because every plan carries its own
   :class:`~numpy.random.SeedSequence`, serial, thread and process execution
   are bit-for-bit identical);
5. :class:`AssembleStage` — charge the ledger, wrap the outcomes in
   guarantees and assemble the :class:`~repro.core.release.MultiLevelRelease`.

:class:`MultiLevelDiscloser` and the group-DP baselines all run this one
pipeline; they differ only in which :class:`CalibrateStage` subclass resolves
sensitivities and epsilons (:class:`GroupCalibrateStage` for the paper's
calibration, :class:`WorstCaseCalibrateStage` for the naive lemma bound,
:class:`UniformCalibrateStage` for the coarsest-level strawman).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

import numpy as np

from repro.accounting.allocation import make_allocation
from repro.accounting.budget import BudgetLedger
from repro.core.common import (
    build_mechanism,
    fingerprint_answers,
    fingerprint_level,
    fingerprint_partition,
    uses_l2_sensitivity,
)
from repro.core.release import LevelRelease, MultiLevelRelease
from repro.exceptions import DisclosureError
from repro.execution import Executor, executor_scope
from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.specialization import Specializer
from repro.mechanisms.base import PrivacyCost
from repro.privacy.guarantees import GroupPrivacyGuarantee, PrivacyUnit
from repro.privacy.sensitivity import group_count_sensitivity, node_count_sensitivity, scale_sensitivity
from repro.queries.base import QueryAnswer
from repro.queries.workload import QueryWorkload, noisy_workload_answers
from repro.utils.rng import derive_seedseq

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import DisclosureConfig


# ----------------------------------------------------------------------
# Task payloads
# ----------------------------------------------------------------------
@dataclass
class LevelPlan:
    """Everything one level's perturbation task needs, frozen and picklable.

    Calibration happens in the main process; the plan carries only plain
    scalars plus a derived :class:`~numpy.random.SeedSequence`, so the
    perturbation can run in any executor (including worker processes) and
    still draw exactly the noise a serial run would draw.
    """

    level: int
    epsilon: float
    sensitivity: float
    mechanism: str
    delta: Optional[float] = None
    num_groups: int = 0
    max_group_size: int = 0
    noise_seed: Optional[np.random.SeedSequence] = None
    description: str = ""


@dataclass
class LevelOutcome:
    """What one perturbation task hands back to the assemble stage."""

    level: int
    answers: Dict[str, Dict[str, float]]
    cost: PrivacyCost
    noise_scale: float


def perturb_level(
    plan: LevelPlan,
    true_answers: Dict[str, QueryAnswer],
    batched: bool = True,
) -> LevelOutcome:
    """Perturb the workload answers for one level plan.

    Module-level (hence process-picklable) and pure: the only randomness
    comes from the plan's own seed, so the result is independent of which
    executor runs it and of how many other levels run concurrently.
    """
    mechanism = build_mechanism(
        plan.mechanism, plan.epsilon, plan.sensitivity, delta=plan.delta, rng=plan.noise_seed
    )
    answers = noisy_workload_answers(mechanism, true_answers, batched=batched)
    return LevelOutcome(
        level=plan.level,
        answers=answers,
        cost=mechanism.privacy_cost(),
        noise_scale=mechanism.noise_scale(),
    )


# ----------------------------------------------------------------------
# Context
# ----------------------------------------------------------------------
@dataclass
class PipelineContext:
    """Mutable state threaded through the pipeline stages.

    Callers populate the input fields (graph, workload, hierarchy or
    specializer, seeds, executor spec); stages fill in the products, ending
    with :attr:`release`.
    """

    graph: BipartiteGraph
    engine: str = "vectorized"
    workload: Optional[QueryWorkload] = None
    hierarchy: Optional[GroupHierarchy] = None
    specializer: Optional[Specializer] = None
    ledger: Optional[BudgetLedger] = None
    executor: Any = None  # ExecutorSpec; resolved to an Executor by run()
    max_workers: Optional[int] = None
    noise_seed: Optional[np.random.SeedSequence] = None
    requested_levels: Optional[Sequence[int]] = None
    #: When true, a requested level absent from the hierarchy is an error
    #: (set by the baselines for caller-supplied level lists); when false,
    #: missing levels are dropped (the discloser's config-derived defaults).
    strict_levels: bool = False
    config: Optional["DisclosureConfig"] = None
    release_config: Dict[str, Any] = field(default_factory=dict)

    # Stage products.
    arrays: Optional[GraphArrays] = None
    batched: bool = False
    levels: List[int] = field(default_factory=list)
    true_answers: Optional[Dict[str, QueryAnswer]] = None
    sensitivities: Dict[int, float] = field(default_factory=dict)
    epsilons: Dict[int, float] = field(default_factory=dict)
    plans: List[LevelPlan] = field(default_factory=list)
    outcomes: List[LevelOutcome] = field(default_factory=list)
    specialization_cost: PrivacyCost = field(default_factory=lambda: PrivacyCost(0.0, 0.0))
    release: Optional[MultiLevelRelease] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def charge(self, cost: PrivacyCost, label: str) -> None:
        """Record a privacy spend when a ledger is attached."""
        if self.ledger is not None:
            self.ledger.charge(cost, label=label)

    def level_seed(self, level: int) -> Optional[np.random.SeedSequence]:
        """The per-level noise seed (``None`` propagates fresh entropy)."""
        if self.noise_seed is None:
            return None
        return derive_seedseq(self.noise_seed, f"level-{level}")


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
class PipelineStage(abc.ABC):
    """One step of the staged pipeline; mutates the context in place."""

    name: str = "stage"

    @abc.abstractmethod
    def run(self, context: PipelineContext) -> None:
        """Execute the stage against ``context``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SpecializeStage(PipelineStage):
    """Phase 1: build the group hierarchy unless one was supplied."""

    name = "specialize"

    def run(self, context: PipelineContext) -> None:
        if context.hierarchy is not None:
            return
        if context.specializer is None:
            raise DisclosureError("no hierarchy given and no specializer configured")
        if context.engine == "vectorized":
            context.graph.arrays()  # compile once so split scoring takes the fast path
        result = context.specializer.build(context.graph)
        context.hierarchy = result.hierarchy
        context.specialization_cost = result.privacy_cost
        context.charge(result.privacy_cost, "specialization")


class CompileStage(PipelineStage):
    """Compile the array view, resolve levels and evaluate true answers."""

    name = "compile"

    def run(self, context: PipelineContext) -> None:
        context.batched = context.engine == "vectorized"
        if context.batched:
            context.arrays = context.graph.arrays()
        if context.hierarchy is not None:
            if context.requested_levels is not None:
                requested = list(context.requested_levels)
            else:
                requested = [
                    level
                    for level in context.hierarchy.level_indices()
                    if level < context.hierarchy.top_level
                ]
            levels = [level for level in requested if context.hierarchy.has_level(level)]
            if context.strict_levels and len(levels) != len(requested):
                missing = [level for level in requested if not context.hierarchy.has_level(level)]
                raise DisclosureError(
                    f"requested levels {missing} do not exist in the hierarchy "
                    f"(available: {context.hierarchy.level_indices()})"
                )
            if not levels:
                raise DisclosureError(
                    f"none of the requested levels {requested} exist in the hierarchy "
                    f"(available: {context.hierarchy.level_indices()})"
                )
            context.levels = levels
        if context.workload is not None:
            if context.batched:
                context.true_answers = context.workload.evaluate_batch(
                    context.graph, arrays=context.arrays
                )
            else:
                context.true_answers = context.workload.evaluate(context.graph)


class CalibrateStage(PipelineStage):
    """Resolve per-level sensitivities/epsilons and freeze the level plans.

    Subclasses define the calibration policy via :meth:`sensitivity_for`,
    :meth:`epsilons_for` and the released mechanism/delta/description.
    """

    name = "calibrate"

    #: Description template for the per-level guarantee.
    description = "group differential privacy at hierarchy level {level} ({num_groups} groups)"

    @abc.abstractmethod
    def mechanism_for(self, context: PipelineContext) -> str:
        """Name of the mechanism this calibration targets."""

    @abc.abstractmethod
    def delta_for(self, context: PipelineContext) -> Optional[float]:
        """The delta handed to the mechanism builder (ignored by pure DP)."""

    @abc.abstractmethod
    def sensitivity_for(self, context: PipelineContext, level: int) -> float:
        """The sensitivity the level's noise is calibrated to."""

    @abc.abstractmethod
    def epsilons_for(self, context: PipelineContext) -> Dict[int, float]:
        """Mapping ``level -> epsilon`` for every released level."""

    def run(self, context: PipelineContext) -> None:
        if context.hierarchy is None:
            raise DisclosureError("calibration requires a hierarchy")
        context.sensitivities = {
            level: self.sensitivity_for(context, level) for level in context.levels
        }
        context.epsilons = self.epsilons_for(context)
        mechanism = self.mechanism_for(context)
        delta = self.delta_for(context)
        plans: List[LevelPlan] = []
        for level in context.levels:
            partition = context.hierarchy.partition_at(level)
            num_groups = partition.num_groups()
            max_group_size = partition.max_group_size()
            plans.append(
                LevelPlan(
                    level=level,
                    epsilon=context.epsilons[level],
                    sensitivity=context.sensitivities[level],
                    mechanism=mechanism,
                    delta=delta,
                    num_groups=num_groups,
                    max_group_size=max_group_size,
                    noise_seed=context.level_seed(level),
                    description=self.description.format(level=level, num_groups=num_groups),
                )
            )
        context.plans = plans


class GroupCalibrateStage(CalibrateStage):
    """The paper's calibration: measured group-level workload sensitivity.

    Reads the :class:`~repro.core.config.DisclosureConfig` on the context for
    the mechanism family, the budget mode and the allocation strategy.
    """

    name = "calibrate-group"

    def _config(self, context: PipelineContext) -> "DisclosureConfig":
        if context.config is None:
            raise DisclosureError("GroupCalibrateStage requires context.config")
        return context.config

    def mechanism_for(self, context: PipelineContext) -> str:
        return self._config(context).mechanism

    def delta_for(self, context: PipelineContext) -> Optional[float]:
        return self._config(context).delta

    def sensitivity_for(self, context: PipelineContext, level: int) -> float:
        partition = context.hierarchy.partition_at(level)
        if uses_l2_sensitivity(self._config(context).mechanism):
            return context.workload.l2_sensitivity(
                context.graph, adjacency="group", partition=partition
            )
        return context.workload.l1_sensitivity(
            context.graph, adjacency="group", partition=partition
        )

    def epsilons_for(self, context: PipelineContext) -> Dict[int, float]:
        config = self._config(context)
        if config.budget_mode == "per_level":
            return {level: config.epsilon_g for level in context.levels}
        strategy_kwargs = {}
        if config.allocation == "geometric":
            strategy_kwargs["ratio"] = config.allocation_ratio
        strategy = make_allocation(config.allocation, **strategy_kwargs)
        return strategy.allocate(
            config.epsilon_g, context.levels, sensitivities=context.sensitivities
        )


class FixedEpsilonCalibrateStage(CalibrateStage):
    """Base for baselines that release every level at one fixed epsilon."""

    def __init__(self, epsilon: float, delta: Optional[float], mechanism: str):
        self.epsilon = epsilon
        self.delta = delta
        self.mechanism = mechanism

    def mechanism_for(self, context: PipelineContext) -> str:
        return self.mechanism

    def delta_for(self, context: PipelineContext) -> Optional[float]:
        return self.delta

    def epsilons_for(self, context: PipelineContext) -> Dict[int, float]:
        return {level: self.epsilon for level in context.levels}


def worst_case_group_sensitivity(graph: BipartiteGraph, partition) -> float:
    """The generic group-privacy lemma's ``max group size x max degree`` bound.

    The single definition behind :class:`WorstCaseCalibrateStage` and
    :meth:`repro.baselines.naive_group.NaiveGroupDPDiscloser.level_sensitivity`,
    so the released noise and the documented bound cannot drift apart.
    """
    max_group_size = max(1, partition.max_group_size())
    max_degree = max(1.0, node_count_sensitivity(graph))
    return scale_sensitivity(float(max_group_size), max_degree)


class WorstCaseCalibrateStage(FixedEpsilonCalibrateStage):
    """Naive group DP: the generic lemma's ``max group size x max degree`` bound."""

    name = "calibrate-worst-case"
    description = "naive group DP via the worst-case group-privacy lemma bound"

    def sensitivity_for(self, context: PipelineContext, level: int) -> float:
        return worst_case_group_sensitivity(
            context.graph, context.hierarchy.partition_at(level)
        )


class UniformCalibrateStage(FixedEpsilonCalibrateStage):
    """Uniform-noise strawman: every level gets the coarsest level's noise."""

    name = "calibrate-uniform"
    description = "uniform noise calibrated to the coarsest level"

    def sensitivity_for(self, context: PipelineContext, level: int) -> float:
        worst = context.extras.get("uniform_worst_sensitivity")
        if worst is None:
            coarsest = max(context.levels)
            worst = group_count_sensitivity(
                context.graph, context.hierarchy.partition_at(coarsest)
            )
            context.extras["uniform_worst_sensitivity"] = worst
        return worst


class PerturbStage(PipelineStage):
    """Phase 2 proper: map the level plans through the executor."""

    name = "perturb"

    def run(self, context: PipelineContext) -> None:
        if context.true_answers is None:
            raise DisclosureError("perturbation requires evaluated true answers")
        task = partial(
            perturb_level, true_answers=context.true_answers, batched=context.batched
        )
        executor: Executor = context.executor
        context.outcomes = executor.map(task, context.plans)


def level_fingerprints_for(context: PipelineContext) -> Dict[str, str]:
    """Per-level content fingerprints over the context's calibrated plans.

    Keys are stringified level numbers (JSON-safe); values digest everything
    that determines the level's released answers given its derived seed.
    Empty when the context has no hierarchy or evaluated answers (a custom
    pipeline without the compile/calibrate stages).
    """
    if context.hierarchy is None or context.true_answers is None:
        return {}
    answers_digest = fingerprint_answers(context.true_answers)
    fingerprints: Dict[str, str] = {}
    for plan in context.plans:
        partition = context.hierarchy.partition_at(plan.level)
        fingerprints[str(plan.level)] = fingerprint_level(
            epsilon=plan.epsilon,
            sensitivity=plan.sensitivity,
            mechanism=plan.mechanism,
            delta=plan.delta,
            partition_digest=fingerprint_partition(partition),
            answers_digest=answers_digest,
        )
    return fingerprints


class AssembleStage(PipelineStage):
    """Charge the ledger, stamp provenance and assemble the release."""

    name = "assemble"

    def run(self, context: PipelineContext) -> None:
        level_releases: Dict[int, LevelRelease] = {}
        for plan, outcome in zip(context.plans, context.outcomes):
            context.charge(outcome.cost, f"noise-injection-level-{plan.level}")
            guarantee = GroupPrivacyGuarantee(
                epsilon=outcome.cost.epsilon,
                delta=outcome.cost.delta,
                unit=PrivacyUnit.GROUP,
                description=plan.description,
                level=plan.level,
                num_groups=plan.num_groups,
                max_group_size=plan.max_group_size,
            )
            level_releases[plan.level] = LevelRelease(
                level=plan.level,
                answers=outcome.answers,
                guarantee=guarantee,
                mechanism=plan.mechanism,
                noise_scale=outcome.noise_scale,
                sensitivity=plan.sensitivity,
            )
        context.release = MultiLevelRelease(
            dataset_name=context.graph.name,
            level_releases=level_releases,
            level_statistics=context.hierarchy.level_statistics()
            if context.hierarchy is not None
            else [],
            specialization_cost=context.specialization_cost,
            config=dict(context.release_config),
            provenance={
                "graph_revision": context.graph.revision,
                "level_fingerprints": level_fingerprints_for(context),
            },
        )


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
class DisclosurePipeline:
    """An ordered sequence of stages run against one context.

    Examples
    --------
    >>> from repro.core.config import DisclosureConfig
    >>> from repro.datasets import generate_dblp_like
    >>> from repro.grouping.specialization import SpecializationConfig, Specializer
    >>> config = DisclosureConfig(specialization=SpecializationConfig(num_levels=4))
    >>> context = PipelineContext(
    ...     graph=generate_dblp_like(num_authors=120, seed=1),
    ...     workload=None, config=config, release_config=config.to_dict(),
    ...     specializer=Specializer(config=config.specialization, rng=0),
    ... )
    >>> from repro.core.common import normalise_workload
    >>> context.workload = normalise_workload(None)
    >>> release = DisclosurePipeline.standard().run(context).release
    >>> sorted(release.levels())[0]
    0
    """

    def __init__(self, stages: Sequence[PipelineStage]):
        self.stages: List[PipelineStage] = list(stages)
        if not self.stages:
            raise DisclosureError("a pipeline needs at least one stage")

    @classmethod
    def standard(cls) -> "DisclosurePipeline":
        """The paper's five-stage pipeline with group-sensitivity calibration."""
        return cls(
            [
                SpecializeStage(),
                CompileStage(),
                GroupCalibrateStage(),
                PerturbStage(),
                AssembleStage(),
            ]
        )

    def stage_names(self) -> List[str]:
        """Names of the stages, in execution order."""
        return [stage.name for stage in self.stages]

    def run(self, context: PipelineContext) -> PipelineContext:
        """Execute every stage in order and return the (mutated) context.

        The executor spec on the context is resolved once for the whole run;
        a pool created here is torn down afterwards, while a caller-supplied
        :class:`~repro.execution.Executor` instance is left open for reuse.
        """
        if context.graph.num_nodes() == 0:
            raise DisclosureError("cannot disclose an empty graph")
        with executor_scope(context.executor, max_workers=context.max_workers) as executor:
            context.executor = executor
            for stage in self.stages:
                stage.run(context)
        return context

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DisclosurePipeline(stages={self.stage_names()})"
