"""A single-file SQLite backend for the release store, with catalog columns.

:class:`SqliteBackend` implements the same seven-byte-method
:class:`~repro.core.store.StoreBackend` contract as the directory and
in-memory backends — ``put``/``get_document``/``get_answers``/``exists``/
``delete``/``keys``/``fingerprint`` — so every existing serving, cache and
fault-injection test runs against it unchanged.  On top of the raw bytes it
maintains *catalog columns* (dataset, mechanism, epsilon, released level
count, graph fingerprint, caller-supplied created-at) extracted from each
document at ``put`` time via :func:`repro.core.catalog.catalog_columns`,
which is what makes ``repro query`` an indexed SQL lookup instead of a
full-document scan.

Design points:

* **Schema versioning.**  A ``schema_version`` table records the applied
  version; :data:`MIGRATIONS` is the ordered in-code migration list, applied
  inside one transaction per migration on every open.  A v1 database (bytes
  only) upgraded by a v2 process gets its catalog columns backfilled from
  the stored documents — the upgrade path is itself under test.
* **WAL mode.**  ``journal_mode=WAL`` lets the multi-process serving fleet
  read concurrently with a writer; ``synchronous=NORMAL`` is safe in WAL
  (a torn write rolls back to the last committed transaction, which is
  exactly what the kill-9 crash test asserts).
* **Fingerprints from a revision column.**  Every ``put`` stamps the row
  with the next value of a store-wide monotonic counter (kept in ``meta``,
  bumped inside the same transaction).  ``fingerprint()`` returns
  ``rev:{n}`` without touching the blobs, and because the counter never
  reuses a value — even across delete/re-put of the same key — the LRU and
  response caches revalidate exactly as they do against the directory
  backend's mtime+size token.
* **No wall-clock reads.**  ``created_at`` is ``NULL`` unless the caller
  supplies a ``clock`` callable (the CLI passes one for interactive
  writes); the backend itself never reads time, keeping stored artefacts
  bit-reproducible under test.
* **Fork/thread safety.**  Connections are per-thread (``threading.local``)
  and guarded by pid, so a forked serving worker never shares its parent's
  connection.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.catalog import ReleaseFilter, catalog_columns
from repro.core.store import PathLike, StoreBackend
from repro.exceptions import ReleaseIntegrityError

#: ``PRAGMA busy_timeout`` — how long a writer waits on a locked database
#: before failing, in milliseconds.  Generous: fleet workers contend rarely.
BUSY_TIMEOUT_MS = 10_000

#: File suffixes :class:`~repro.core.store.ReleaseStore` treats as SQLite
#: stores when auto-detecting a backend from a path.
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

#: The on-disk magic prefix of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"


def _migration_1_initial(conn: sqlite3.Connection) -> None:
    """v1: raw byte storage + the monotonic revision counter."""
    conn.execute(
        """
        CREATE TABLE releases (
            key        TEXT PRIMARY KEY,
            document   BLOB NOT NULL,
            answers    BLOB NOT NULL,
            revision   INTEGER NOT NULL,
            created_at TEXT
        )
        """
    )
    conn.execute("CREATE TABLE meta (name TEXT PRIMARY KEY, value INTEGER NOT NULL)")
    conn.execute("INSERT INTO meta (name, value) VALUES ('revision', 0)")


def _migration_2_catalog_columns(conn: sqlite3.Connection) -> None:
    """v2: extracted catalog columns + backfill of pre-catalog rows.

    The backfill runs the same extraction as a fresh ``put``, so a store
    created at schema v1 answers catalog queries identically to one written
    at v2 from the start.
    """
    conn.execute("ALTER TABLE releases ADD COLUMN dataset TEXT")
    conn.execute("ALTER TABLE releases ADD COLUMN mechanism TEXT")
    conn.execute("ALTER TABLE releases ADD COLUMN epsilon REAL")
    conn.execute("ALTER TABLE releases ADD COLUMN levels INTEGER")
    conn.execute("ALTER TABLE releases ADD COLUMN graph_fingerprint TEXT")
    conn.execute(
        "CREATE INDEX idx_releases_catalog ON releases (mechanism, epsilon)"
    )
    for key, document in conn.execute("SELECT key, document FROM releases").fetchall():
        try:
            columns = catalog_columns(bytes(document))
        except ReleaseIntegrityError:
            continue  # unparseable document: leave its catalog columns NULL
        conn.execute(
            "UPDATE releases SET dataset = ?, mechanism = ?, epsilon = ?,"
            " levels = ?, graph_fingerprint = ? WHERE key = ?",
            (
                columns["dataset"],
                columns["mechanism"],
                columns["epsilon"],
                columns["levels"],
                columns["graph"],
                key,
            ),
        )


#: Ordered migration list: ``(target_version, apply(conn))``.  Applied in
#: order on open for every version above the database's recorded one, each
#: inside its own transaction (the version bump commits with the DDL).
MIGRATIONS = (
    (1, _migration_1_initial),
    (2, _migration_2_catalog_columns),
)

SCHEMA_VERSION = MIGRATIONS[-1][0]


class SqliteBackend(StoreBackend):
    """Release storage in one SQLite file, queryable by catalog columns.

    Parameters
    ----------
    path:
        The database file; parent directories are created, the schema is
        created/migrated on open.
    clock:
        Optional zero-argument callable returning the ``created_at`` string
        stamped on each ``put`` (e.g. :func:`repro.core.catalog.system_clock`).
        ``None`` (the default) stores ``NULL`` — the backend never reads the
        wall clock itself.
    """

    def __init__(self, path: PathLike, clock: Optional[Callable[[], str]] = None):
        self.path = Path(path)
        self.root = self.path  # fleet/publisher hand this to worker processes
        self._clock = clock
        self._local = threading.local()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._migrate()

    # -- connection management ----------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=BUSY_TIMEOUT_MS / 1000)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        # Explicit transaction control: BEGIN IMMEDIATE in put(), not the
        # driver's lazy autocommit-ish statement batching.
        conn.isolation_level = None
        return conn

    @property
    def _conn(self) -> sqlite3.Connection:
        """The calling thread's connection, re-opened after fork."""
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", None) != pid:
            self._local.conn = self._connect()
            self._local.pid = pid
            conn = self._local.conn
        return conn

    def close(self) -> None:
        """Close the calling thread's connection (others close on GC)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- schema --------------------------------------------------------
    def _migrate(self) -> None:
        conn = self._conn
        conn.execute(
            "CREATE TABLE IF NOT EXISTS schema_version (version INTEGER NOT NULL)"
        )
        row = conn.execute("SELECT MAX(version) FROM schema_version").fetchone()
        current = row[0] if row and row[0] is not None else 0
        if current > SCHEMA_VERSION:
            raise ReleaseIntegrityError(
                f"store {self.path} has schema version {current}, newer than this "
                f"code understands ({SCHEMA_VERSION}); refusing to open"
            )
        for version, apply in MIGRATIONS:
            if version <= current:
                continue
            conn.execute("BEGIN IMMEDIATE")
            try:
                # Re-check under the write lock: another process may have
                # migrated between our read and our BEGIN.
                row = conn.execute("SELECT MAX(version) FROM schema_version").fetchone()
                if (row[0] or 0) >= version:
                    conn.execute("ROLLBACK")
                    continue
                apply(conn)
                conn.execute("INSERT INTO schema_version (version) VALUES (?)", (version,))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def schema_version(self) -> int:
        """The applied schema version (for tests and diagnostics)."""
        row = self._conn.execute("SELECT MAX(version) FROM schema_version").fetchone()
        return int(row[0] or 0)

    # -- StoreBackend --------------------------------------------------
    def put(self, key: str, document: bytes, answers: bytes) -> None:
        try:
            columns = catalog_columns(document)
        except ReleaseIntegrityError:
            # Foreign bytes (tests store b"not json" deliberately): keep the
            # byte contract, leave the catalog columns NULL.
            columns = {
                "dataset": None,
                "mechanism": None,
                "epsilon": None,
                "levels": None,
                "graph": None,
            }
        created_at = self._clock() if self._clock is not None else None
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute("UPDATE meta SET value = value + 1 WHERE name = 'revision'")
            revision = conn.execute(
                "SELECT value FROM meta WHERE name = 'revision'"
            ).fetchone()[0]
            conn.execute(
                """
                INSERT OR REPLACE INTO releases
                    (key, document, answers, revision, created_at,
                     dataset, mechanism, epsilon, levels, graph_fingerprint)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    key,
                    sqlite3.Binary(document),
                    sqlite3.Binary(answers),
                    revision,
                    created_at,
                    columns["dataset"],
                    columns["mechanism"],
                    columns["epsilon"],
                    columns["levels"],
                    columns["graph"],
                ),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def get_document(self, key: str) -> bytes:
        row = self._conn.execute(
            "SELECT document FROM releases WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise KeyError(key)
        return bytes(row[0])

    def get_answers(self, key: str) -> Optional[bytes]:
        row = self._conn.execute(
            "SELECT answers FROM releases WHERE key = ?", (key,)
        ).fetchone()
        return bytes(row[0]) if row is not None else None

    def exists(self, key: str) -> bool:
        return (
            self._conn.execute(
                "SELECT 1 FROM releases WHERE key = ?", (key,)
            ).fetchone()
            is not None
        )

    def delete(self, key: str) -> None:
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute("DELETE FROM releases WHERE key = ?", (key,))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def keys(self) -> List[str]:
        return [
            row[0]
            for row in self._conn.execute("SELECT key FROM releases ORDER BY key")
        ]

    def fingerprint(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT revision FROM releases WHERE key = ?", (key,)
        ).fetchone()
        return f"rev:{row[0]}" if row is not None else None

    def describe(self) -> str:
        return str(self.path)

    # -- catalog -------------------------------------------------------
    def query_catalog(self, release_filter: ReleaseFilter) -> List[Dict[str, object]]:
        """Catalog rows matching ``release_filter``, straight from SQL.

        The indexed path behind :class:`~repro.core.catalog.ReleaseCatalog`:
        no document blob is read, the filter compiles to a parameterized
        WHERE clause, and rows come back in the same shape and order as the
        full-scan fallback.
        """
        where, params = release_filter.sql_where()
        rows = self._conn.execute(
            "SELECT key, dataset, mechanism, epsilon, levels, graph_fingerprint,"
            f" created_at FROM releases{where} ORDER BY key",
            params,
        ).fetchall()
        return [
            {
                "key": row[0],
                "dataset": row[1],
                "mechanism": row[2],
                "epsilon": row[3],
                "levels": row[4],
                "graph": row[5],
                "created_at": row[6],
            }
            for row in rows
        ]


def is_sqlite_path(path: PathLike) -> bool:
    """Whether ``path`` should be opened as a SQLite store.

    True for the conventional suffixes (``.db``/``.sqlite``/``.sqlite3``) —
    even before the file exists, so a fresh ``repro disclose --store x.db``
    creates a SQLite store — and for any existing file carrying the SQLite
    magic header, whatever its name.
    """
    path = Path(path)
    if path.is_dir():
        return False
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return True
    if path.is_file():
        try:
            with open(path, "rb") as handle:
                return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
        except OSError:
            return False
    return False
