"""Helpers shared by the discloser, the baselines and the pipeline stages.

Before the staged pipeline existed, every discloser hand-rolled the same two
chores — normalising whatever the caller passed as a workload, and turning a
mechanism name into a calibrated mechanism instance — in four slightly
divergent copies.  They live here once, so a new mechanism or workload shape
is wired up in exactly one place.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DisclosureError
from repro.mechanisms.base import NumericMechanism
from repro.mechanisms.gaussian import AnalyticGaussianMechanism, GaussianMechanism
from repro.mechanisms.geometric import GeometricMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.queries.base import Query
from repro.queries.counts import TotalAssociationCountQuery
from repro.queries.workload import QueryWorkload
from repro.utils.rng import RandomState, derive_seedseq

WorkloadLike = Union[None, Query, Iterable[Query], QueryWorkload]

#: Mechanism names accepted by :func:`build_mechanism`.
MECHANISM_BUILDERS: Tuple[str, ...] = ("gaussian", "analytic_gaussian", "laplace", "geometric")

#: Mechanism names that calibrate to the L2 sensitivity (and consume delta).
L2_MECHANISMS: Tuple[str, ...] = ("gaussian", "analytic_gaussian")


def normalise_workload(queries: WorkloadLike, default_name: str = "paper-count-workload") -> QueryWorkload:
    """Coerce ``None`` / a query / an iterable of queries into a workload.

    ``None`` yields the paper's single-query workload (the total association
    count) under ``default_name``; an existing :class:`QueryWorkload` passes
    through unchanged.
    """
    if queries is None:
        return QueryWorkload([TotalAssociationCountQuery()], name=default_name)
    if isinstance(queries, QueryWorkload):
        return queries
    if isinstance(queries, Query):
        return QueryWorkload([queries])
    return QueryWorkload(list(queries))


def build_mechanism(
    name: str,
    epsilon: float,
    sensitivity: float,
    delta: Optional[float] = None,
    rng: RandomState = None,
) -> NumericMechanism:
    """Instantiate a calibrated numeric mechanism by name.

    ``delta`` is required by the Gaussian family and ignored by the pure-DP
    mechanisms, mirroring how the disclosers have always treated it.
    """
    if name == "gaussian":
        return GaussianMechanism(epsilon=epsilon, delta=delta, sensitivity=sensitivity, rng=rng)
    if name == "analytic_gaussian":
        return AnalyticGaussianMechanism(epsilon=epsilon, delta=delta, sensitivity=sensitivity, rng=rng)
    if name == "laplace":
        return LaplaceMechanism(epsilon=epsilon, sensitivity=sensitivity, rng=rng)
    if name == "geometric":
        return GeometricMechanism(epsilon=epsilon, sensitivity=sensitivity, rng=rng)
    raise DisclosureError(f"unsupported mechanism {name!r} (supported: {MECHANISM_BUILDERS})")


def uses_l2_sensitivity(mechanism: str) -> bool:
    """Whether ``mechanism`` calibrates to the L2 (Gaussian-family) sensitivity."""
    return mechanism in L2_MECHANISMS


class DiscloseSeedStream:
    """Derived noise-seed material, one independent stream per disclose call.

    The one definition of the per-call derivation scheme shared by
    :class:`~repro.core.discloser.MultiLevelDiscloser` and every baseline:
    the root seed material is derived once from the caller's ``rng`` under a
    component label, and each :meth:`next` yields a fresh
    :class:`~numpy.random.SeedSequence` keyed by the call index
    (``disclose-1``, ``disclose-2``, ...).  Deriving per call — rather than
    advancing a live generator — is what keeps repeat disclosures and
    serial/thread/process execution bit-identical for the same seed.  An
    unseeded stream (``rng=None``) yields ``None``, i.e. fresh entropy
    downstream.
    """

    def __init__(self, rng: RandomState, label: str):
        self._root: Optional[np.random.SeedSequence] = (
            derive_seedseq(rng, label) if rng is not None else None
        )
        self._calls = 0

    def next(self) -> Optional[np.random.SeedSequence]:
        """Seed material for the next disclose call."""
        self._calls += 1
        if self._root is None:
            return None
        return derive_seedseq(self._root, f"disclose-{self._calls}")
