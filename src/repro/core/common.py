"""Helpers shared by the discloser, the baselines and the pipeline stages.

Before the staged pipeline existed, every discloser hand-rolled the same two
chores — normalising whatever the caller passed as a workload, and turning a
mechanism name into a calibrated mechanism instance — in four slightly
divergent copies.  They live here once, so a new mechanism or workload shape
is wired up in exactly one place.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DisclosureError
from repro.mechanisms.base import NumericMechanism
from repro.mechanisms.gaussian import AnalyticGaussianMechanism, GaussianMechanism
from repro.mechanisms.geometric import GeometricMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.queries.base import Query
from repro.queries.counts import TotalAssociationCountQuery
from repro.queries.workload import QueryWorkload
from repro.utils.rng import RandomState, derive_seedseq
from repro.utils.serialization import canonical_json_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grouping.partition import Partition
    from repro.queries.base import QueryAnswer

WorkloadLike = Union[None, Query, Iterable[Query], QueryWorkload]

#: Mechanism names accepted by :func:`build_mechanism`.
MECHANISM_BUILDERS: Tuple[str, ...] = ("gaussian", "analytic_gaussian", "laplace", "geometric")

#: Mechanism names that calibrate to the L2 sensitivity (and consume delta).
L2_MECHANISMS: Tuple[str, ...] = ("gaussian", "analytic_gaussian")


def normalise_workload(queries: WorkloadLike, default_name: str = "paper-count-workload") -> QueryWorkload:
    """Coerce ``None`` / a query / an iterable of queries into a workload.

    ``None`` yields the paper's single-query workload (the total association
    count) under ``default_name``; an existing :class:`QueryWorkload` passes
    through unchanged.
    """
    if queries is None:
        return QueryWorkload([TotalAssociationCountQuery()], name=default_name)
    if isinstance(queries, QueryWorkload):
        return queries
    if isinstance(queries, Query):
        return QueryWorkload([queries])
    return QueryWorkload(list(queries))


def build_mechanism(
    name: str,
    epsilon: float,
    sensitivity: float,
    delta: Optional[float] = None,
    rng: RandomState = None,
) -> NumericMechanism:
    """Instantiate a calibrated numeric mechanism by name.

    ``delta`` is required by the Gaussian family and ignored by the pure-DP
    mechanisms, mirroring how the disclosers have always treated it.
    """
    if name == "gaussian":
        return GaussianMechanism(epsilon=epsilon, delta=delta, sensitivity=sensitivity, rng=rng)
    if name == "analytic_gaussian":
        return AnalyticGaussianMechanism(epsilon=epsilon, delta=delta, sensitivity=sensitivity, rng=rng)
    if name == "laplace":
        return LaplaceMechanism(epsilon=epsilon, sensitivity=sensitivity, rng=rng)
    if name == "geometric":
        return GeometricMechanism(epsilon=epsilon, sensitivity=sensitivity, rng=rng)
    raise DisclosureError(f"unsupported mechanism {name!r} (supported: {MECHANISM_BUILDERS})")


def uses_l2_sensitivity(mechanism: str) -> bool:
    """Whether ``mechanism`` calibrates to the L2 (Gaussian-family) sensitivity."""
    return mechanism in L2_MECHANISMS


# ----------------------------------------------------------------------
# Level fingerprints (the incremental-refresh contract)
# ----------------------------------------------------------------------
def fingerprint_partition(partition: "Partition") -> str:
    """Content digest of a partition: its groups, members and levels.

    Group order is normalised (sorted by group id) so two partitions with the
    same content always digest identically, regardless of construction order.
    The digest is memoised on the partition instance — hierarchies are built
    once and reused across releases, so repeated disclosures pay the
    serialization once per level.
    """
    cached = getattr(partition, "_content_digest", None)
    if cached is not None:
        return cached
    groups = sorted(partition.to_dict()["groups"], key=lambda group: str(group.get("group_id")))
    digest = hashlib.sha256(canonical_json_bytes({"groups": groups})).hexdigest()
    try:
        partition._content_digest = digest  # noqa: SLF001 - memo on our own type
    except AttributeError:  # pragma: no cover - exotic partition subclass
        pass
    return digest


def fingerprint_answers(true_answers: Dict[str, "QueryAnswer"]) -> str:
    """Content digest of the workload's true answers on one graph."""
    payload = {
        name: answer.to_dict() for name, answer in sorted(true_answers.items(), key=lambda kv: kv[0])
    }
    return hashlib.sha256(canonical_json_bytes(payload)).hexdigest()


def fingerprint_level(
    *,
    epsilon: float,
    sensitivity: float,
    mechanism: str,
    delta: Optional[float],
    partition_digest: str,
    answers_digest: str,
) -> str:
    """Digest of everything that determines one level's released answers.

    Given the level's derived noise seed, the perturbed output is a pure
    function of exactly these inputs — so two disclosures of the same seed
    whose fingerprints match for a level produce bit-identical
    :class:`~repro.core.release.LevelRelease` objects for it.  That is the
    invariant the refresh path (:mod:`repro.core.refresh`) relies on when it
    reuses a stored level instead of re-perturbing (and re-spending) it.
    """
    payload = {
        "epsilon": float(epsilon),
        "sensitivity": float(sensitivity),
        "mechanism": str(mechanism),
        "delta": None if delta is None else float(delta),
        "partition": partition_digest,
        "answers": answers_digest,
    }
    return hashlib.sha256(canonical_json_bytes(payload)).hexdigest()


class DiscloseSeedStream:
    """Derived noise-seed material, one independent stream per disclose call.

    The one definition of the per-call derivation scheme shared by
    :class:`~repro.core.discloser.MultiLevelDiscloser` and every baseline:
    the root seed material is derived once from the caller's ``rng`` under a
    component label, and each :meth:`next` yields a fresh
    :class:`~numpy.random.SeedSequence` keyed by the call index
    (``disclose-1``, ``disclose-2``, ...).  Deriving per call — rather than
    advancing a live generator — is what keeps repeat disclosures and
    serial/thread/process execution bit-identical for the same seed.  An
    unseeded stream (``rng=None``) yields ``None``, i.e. fresh entropy
    downstream.
    """

    def __init__(self, rng: RandomState, label: str):
        self._root: Optional[np.random.SeedSequence] = (
            derive_seedseq(rng, label) if rng is not None else None
        )
        self._calls = 0

    def next(self) -> Optional[np.random.SeedSequence]:
        """Seed material for the next disclose call."""
        self._calls += 1
        if self._root is None:
            return None
        return derive_seedseq(self._root, f"disclose-{self._calls}")

    @property
    def calls(self) -> int:
        """How many seeds have been drawn so far."""
        return self._calls

    def seed_for(self, call_index: int) -> Optional[np.random.SeedSequence]:
        """Re-derive the seed of an earlier (or future) draw, without drawing.

        Pure with respect to the stream state: the root material is frozen at
        construction, so ``seed_for(n)`` equals the value ``next()`` returned
        (or will return) on its ``n``-th call.  The refresh path uses this to
        perturb a release's affected levels with exactly the noise stream the
        original disclosure drew — recorded in the release provenance as
        ``noise_draw``.
        """
        if self._root is None:
            return None
        return derive_seedseq(self._root, f"disclose-{int(call_index)}")
