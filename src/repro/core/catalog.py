"""Queryable release catalog over any :class:`~repro.core.store.ReleaseStore`.

A production store accumulates thousands of releases — ``get_or_create``
resume, journaled sweeps and a multi-process serving fleet all write into
the same :class:`ReleaseStore` — and a flat ``keys()`` listing cannot answer
operational questions like *"all gaussian releases at epsilon 0.5 on this
graph fingerprint"*.  This module is the repository layer that can:

* :class:`ReleaseFilter` — a typed filter (mechanism, epsilon, graph
  fingerprint, key glob, created-at lower bound) that compiles to
  parameterized SQL on a :class:`~repro.core.sqlite_backend.SqliteBackend`
  and to an equivalent Python predicate everywhere else;
* :class:`ReleaseCatalog` — ``rows(filter)`` returns one dictionary per
  matching release, sorted by key.  Backends exposing ``query_catalog``
  (the SQLite backend) answer from their indexed catalog columns without
  reading a single document; every other backend is served by a full-scan
  fallback that parses each stored document through the **same** column
  extraction, so the two paths return identical result sets for identically
  seeded stores;
* :func:`catalog_row` / :func:`graph_fingerprint` — the single definition of
  how catalog columns are derived from a stored release document.  The
  SQLite backend extracts them at ``put`` time and persists them as real
  columns; the scan fallback extracts them at query time.  One function,
  two call sites, zero drift.

Catalog columns (:data:`CATALOG_COLUMNS`, in display order): ``key``,
``dataset``, ``mechanism``, ``epsilon``, ``levels`` (released level count),
``graph`` (the graph fingerprint) and ``created_at`` (``None`` unless the
writing backend was given a caller-supplied clock — the backend itself never
reads the wall clock, keeping stored artefacts deterministic under test).

The ``repro query`` CLI subcommand renders these rows as an aligned table,
CSV, or canonical JSON (:func:`format_rows`).
"""

from __future__ import annotations

import csv
import fnmatch
import hashlib
import io
import json
from dataclasses import dataclass, fields
from datetime import datetime, timezone
from typing import Dict, List, Optional, Tuple, Union

from repro.core.store import ReleaseStore
from repro.exceptions import ReleaseIntegrityError, ValidationError
from repro.utils.serialization import canonical_json_bytes

#: Catalog columns in display order — one dict key per column in every row.
CATALOG_COLUMNS: Tuple[str, ...] = (
    "key",
    "dataset",
    "mechanism",
    "epsilon",
    "levels",
    "graph",
    "created_at",
)

#: ``repro query --format`` spellings.
OUTPUT_FORMATS: Tuple[str, ...] = ("table", "csv", "json")


def system_clock() -> str:
    """A UTC ISO-8601 timestamp — the *caller-supplied* created-at source.

    Store backends never read the wall clock themselves (stored artefacts
    must be reproducible under test); instead the CLI passes this function
    into the store so interactively-written releases carry a ``created_at``
    the ``--since`` filter can use.
    """
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def graph_fingerprint(document: dict) -> str:
    """A short content fingerprint of the graph behind a release document.

    Derived from what the release itself discloses about its source graph —
    the dataset name plus the per-level group-size statistics of the
    hierarchy built over it — so two releases of the same graph under the
    same specialization share a fingerprint regardless of mechanism,
    epsilon, or noise draw, and the fingerprint is computable from the
    document alone (no graph access, identical across store backends).
    """
    payload = {
        "dataset_name": document.get("dataset_name"),
        "level_statistics": document.get("level_statistics", []),
    }
    return hashlib.sha256(canonical_json_bytes(payload)).hexdigest()[:16]


def catalog_columns(document: Union[bytes, dict]) -> Dict[str, object]:
    """The extracted catalog columns of one stored release document.

    Accepts the raw document bytes (what a backend holds) or the parsed
    dict.  Tolerates level-view documents (``save_level`` artefacts): the
    mechanism falls back to the single level's own record and missing
    provenance renders as ``None`` rather than failing the whole catalog.
    """
    if isinstance(document, (bytes, bytearray)):
        try:
            document = json.loads(bytes(document).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ReleaseIntegrityError(f"catalog cannot parse document: {exc}") from exc
    config = document.get("config") or {}
    mechanism = config.get("mechanism")
    epsilon = config.get("epsilon_g")
    levels = document.get("levels") or {}
    if mechanism is None:
        for level_doc in levels.values():
            mechanism = level_doc.get("mechanism")
            break
    return {
        "dataset": document.get("dataset_name"),
        "mechanism": mechanism,
        "epsilon": float(epsilon) if epsilon is not None else None,
        "levels": len(levels),
        "graph": graph_fingerprint(document),
    }


def catalog_row(
    key: str, document: Union[bytes, dict], created_at: Optional[str] = None
) -> Dict[str, object]:
    """One full catalog row (:data:`CATALOG_COLUMNS` order) for ``key``."""
    row: Dict[str, object] = {"key": key}
    row.update(catalog_columns(document))
    row["created_at"] = created_at
    return row


@dataclass(frozen=True)
class ReleaseFilter:
    """A typed conjunction of catalog predicates.

    Every field is optional; ``None`` means "no constraint".  The same
    filter compiles to parameterized SQL (:meth:`sql_where`) on the SQLite
    backend and evaluates as a Python predicate (:meth:`matches`) in the
    full-scan fallback — the two must stay semantically identical, which is
    what the cross-backend parity tests pin.

    Parameters
    ----------
    mechanism:
        Exact mechanism name (``"gaussian"``, ``"laplace"``, ...).
    epsilon:
        Exact per-level budget ``epsilon_g``.  Both paths compare the float
        parsed from the same stored JSON, so equality is well-defined.
    graph:
        Exact graph fingerprint (:func:`graph_fingerprint`).
    key_glob:
        Shell-style key pattern (``*``, ``?``, ``[...]`` character classes;
        case-sensitive on both paths).
    since:
        ISO-8601 lower bound on ``created_at``.  Rows without a recorded
        ``created_at`` (directory stores, clock-less SQLite writers) never
        match a ``since`` filter — an unknown age is not evidence of
        recency.
    """

    mechanism: Optional[str] = None
    epsilon: Optional[float] = None
    graph: Optional[str] = None
    key_glob: Optional[str] = None
    since: Optional[str] = None

    def is_empty(self) -> bool:
        """Whether the filter constrains nothing (every row matches)."""
        return all(getattr(self, spec.name) is None for spec in fields(self))

    # -- SQL path ------------------------------------------------------
    def sql_where(self) -> Tuple[str, List[object]]:
        """``(WHERE clause, parameters)`` for the SQLite catalog table.

        Always parameterized — filter values never interpolate into SQL
        text, so a hostile key glob or mechanism string is inert.
        """
        clauses: List[str] = []
        params: List[object] = []
        if self.mechanism is not None:
            clauses.append("mechanism = ?")
            params.append(self.mechanism)
        if self.epsilon is not None:
            clauses.append("epsilon = ?")
            params.append(float(self.epsilon))
        if self.graph is not None:
            clauses.append("graph_fingerprint = ?")
            params.append(self.graph)
        if self.key_glob is not None:
            clauses.append("key GLOB ?")
            params.append(self.key_glob)
        if self.since is not None:
            clauses.append("created_at IS NOT NULL AND created_at >= ?")
            params.append(self.since)
        if not clauses:
            return "", []
        return " WHERE " + " AND ".join(clauses), params

    # -- scan path -----------------------------------------------------
    def matches(self, row: Dict[str, object]) -> bool:
        """Whether one catalog row satisfies every set predicate."""
        if self.mechanism is not None and row.get("mechanism") != self.mechanism:
            return False
        if self.epsilon is not None and row.get("epsilon") != float(self.epsilon):
            return False
        if self.graph is not None and row.get("graph") != self.graph:
            return False
        if self.key_glob is not None and not fnmatch.fnmatchcase(
            str(row.get("key")), self.key_glob
        ):
            return False
        if self.since is not None:
            created_at = row.get("created_at")
            if created_at is None or str(created_at) < self.since:
                return False
        return True


class ReleaseCatalog:
    """The repository over a store's catalog columns.

    Backends that maintain an indexed catalog expose ``query_catalog(filter)``
    (the SQLite backend); :meth:`rows` uses it when present and otherwise
    falls back to a full scan that extracts the same columns from every
    stored document — so one ``repro query`` command inspects any store.
    """

    def __init__(self, store: ReleaseStore):
        self.store = store

    def rows(self, release_filter: Optional[ReleaseFilter] = None) -> List[Dict[str, object]]:
        """Matching catalog rows, sorted by key."""
        release_filter = release_filter or ReleaseFilter()
        query = getattr(self.store.backend, "query_catalog", None)
        if callable(query):
            return query(release_filter)
        return self._scan(release_filter)

    def _scan(self, release_filter: ReleaseFilter) -> List[Dict[str, object]]:
        """The full-scan fallback: parse every document, filter in Python.

        A release deleted between ``keys()`` and its read (or torn behind
        the store) is skipped rather than failing the whole listing — the
        catalog is an inspection tool, not an integrity checker.
        """
        rows: List[Dict[str, object]] = []
        backend = self.store.backend
        for key in self.store.keys():
            try:
                document = backend.get_document(key)
            except KeyError:
                continue
            try:
                row = catalog_row(key, document, created_at=None)
            except ReleaseIntegrityError:
                continue
            if release_filter.matches(row):
                rows.append(row)
        return sorted(rows, key=lambda row: str(row["key"]))


def format_rows(rows: List[Dict[str, object]], output_format: str = "table") -> str:
    """Render catalog rows as an aligned table, CSV, or canonical JSON.

    The JSON form is the machine contract: canonical bytes (sorted keys),
    so identically seeded stores produce identical output regardless of
    backend — the property the acceptance tests diff on.
    """
    if output_format not in OUTPUT_FORMATS:
        raise ValidationError(
            f"output format must be one of {OUTPUT_FORMATS}, got {output_format!r}"
        )
    if output_format == "json":
        return canonical_json_bytes(rows).decode("utf-8").rstrip("\n")
    if output_format == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(CATALOG_COLUMNS)
        for row in rows:
            writer.writerow(
                ["" if row.get(col) is None else row.get(col) for col in CATALOG_COLUMNS]
            )
        return buffer.getvalue().rstrip("\n")
    from repro.evaluation.reporting import format_table

    if not rows:
        return "(no matching releases)"
    return format_table(rows, columns=list(CATALOG_COLUMNS))
