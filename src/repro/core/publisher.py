"""A stateful publisher managing repeated disclosures under a total budget.

The pipeline in :mod:`repro.core.discloser` performs *one* release.  A real
publisher typically answers a sequence of requests over time — new epsilon
sweeps, new workloads, refreshed releases — and must make sure the cumulative
privacy loss stays within an agreed budget.  :class:`GraphPublisher` wraps a
graph, a specialization (built once and reused, so its budget is paid once),
a :class:`~repro.accounting.budget.BudgetLedger`, and convenience methods for
producing per-role exports of each release.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.accounting.budget import BudgetLedger, PrivacyBudget
from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.refresh import RefreshResult
from repro.core.release import LevelRelease, MultiLevelRelease
from repro.core.store import ReleaseStore
from repro.exceptions import BudgetExceededError, DisclosureError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.specialization import Specializer
from repro.mechanisms.base import PrivacyCost
from repro.queries.base import Query
from repro.queries.workload import QueryWorkload
from repro.utils.rng import RandomState, derive_rng
from repro.utils.serialization import to_json_file


class GraphPublisher:
    """Manages repeated group-private releases of one association graph.

    Parameters
    ----------
    graph:
        The association graph being published.
    total_budget:
        The overall ``(epsilon, delta)`` the publisher is willing to spend
        across *all* releases (specialization included).  ``None`` disables
        enforcement and only records spends.
    base_config:
        Default :class:`DisclosureConfig` for releases (per-release overrides
        are accepted by :meth:`release`).
    rng:
        Seed / generator; every release derives an independent stream.

    Examples
    --------
    >>> from repro.datasets import generate_dblp_like
    >>> publisher = GraphPublisher(generate_dblp_like(300, seed=1),
    ...                            total_budget=PrivacyBudget(5.0, 1e-3), rng=0)
    >>> release = publisher.release(epsilon_g=0.5)
    >>> publisher.spent().epsilon > 0
    True
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        total_budget: Optional[PrivacyBudget] = None,
        base_config: Optional[DisclosureConfig] = None,
        rng: RandomState = None,
    ):
        if graph.num_nodes() == 0:
            raise DisclosureError("cannot publish an empty graph")
        self.graph = graph
        self.base_config = base_config if base_config is not None else DisclosureConfig()
        self.ledger = BudgetLedger(total_budget)
        self._rng = derive_rng(rng, "graph-publisher")
        self._hierarchy: Optional[GroupHierarchy] = None
        self._releases: List[MultiLevelRelease] = []
        # Per-release refresh material: the discloser that produced each
        # release (its frozen noise-seed stream is what lets a refresh
        # re-perturb affected levels with the original streams).
        self._release_records: List[dict] = []
        self._release_counter = 0

    # ------------------------------------------------------------------
    # Hierarchy management
    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> Optional[GroupHierarchy]:
        """The shared hierarchy, or ``None`` before the first release."""
        return self._hierarchy

    def build_hierarchy(self, specializer: Optional[Specializer] = None) -> GroupHierarchy:
        """Build (or rebuild) the shared hierarchy, charging its budget once.

        A rebuilt hierarchy replaces the previous one for subsequent releases.
        """
        specializer = (
            specializer
            if specializer is not None
            else Specializer(config=self.base_config.specialization, rng=derive_rng(self._rng, "specialization"))
        )
        result = specializer.build(self.graph)
        if not self.ledger.can_spend(result.privacy_cost):
            raise BudgetExceededError(result.privacy_cost.to_dict(), self._remaining_dict())
        self.ledger.charge(result.privacy_cost, label="specialization")
        self._hierarchy = result.hierarchy
        return self._hierarchy

    def _remaining_dict(self) -> Optional[dict]:
        remaining = self.ledger.remaining()
        return remaining.to_dict() if remaining is not None else None

    # ------------------------------------------------------------------
    # Releases
    # ------------------------------------------------------------------
    def _release_cost(self, config: DisclosureConfig, levels: List[int]) -> PrivacyCost:
        """Conservative cost of one release: worst per-level epsilon/delta.

        Each level's guarantee is stated against its own group adjacency, so
        the release as a whole is charged the worst level's cost (identical to
        what :meth:`MultiLevelRelease.noise_injection_cost` reports).
        """
        if config.budget_mode == "per_level":
            delta = config.delta if config.uses_l2_sensitivity() else 0.0
            return PrivacyCost(config.epsilon_g, delta)
        delta = config.delta if config.uses_l2_sensitivity() else 0.0
        return PrivacyCost(config.epsilon_g, delta)

    def release(
        self,
        epsilon_g: Optional[float] = None,
        queries: Union[None, Query, Iterable[Query], QueryWorkload] = None,
        config: Optional[DisclosureConfig] = None,
        label: str = "",
    ) -> MultiLevelRelease:
        """Produce one multi-level release, charging the ledger.

        Parameters
        ----------
        epsilon_g:
            Override the per-level budget of the base configuration.
        queries:
            Workload for this release (defaults to the total association count).
        config:
            Full configuration override (``epsilon_g`` is applied on top of it).
        label:
            Optional label recorded in the ledger entry.
        """
        config = config if config is not None else self.base_config
        if epsilon_g is not None:
            config = DisclosureConfig(
                epsilon_g=epsilon_g,
                delta=config.delta,
                mechanism=config.mechanism,
                specialization=config.specialization,
                release_levels=config.release_levels,
                budget_mode=config.budget_mode,
                allocation=config.allocation,
                allocation_ratio=config.allocation_ratio,
            )
        if self._hierarchy is None:
            self.build_hierarchy()

        levels = [level for level in config.resolved_release_levels() if self._hierarchy.has_level(level)]
        cost = self._release_cost(config, levels)
        if not self.ledger.can_spend(cost):
            raise BudgetExceededError(cost.to_dict(), self._remaining_dict())

        self._release_counter += 1
        discloser = MultiLevelDiscloser(
            config=config,
            queries=queries,
            rng=derive_rng(self._rng, f"release-{self._release_counter}"),
        )
        release = discloser.disclose(self.graph, hierarchy=self._hierarchy)
        self.ledger.charge(cost, label=label or f"release-{self._release_counter}")
        self._releases.append(release)
        self._release_records.append(
            {"release": release, "discloser": discloser, "config": config}
        )
        return release

    def refresh(
        self,
        release: Optional[MultiLevelRelease] = None,
        store: Optional[ReleaseStore] = None,
        key: Optional[str] = None,
        label: str = "",
    ) -> RefreshResult:
        """Re-disclose the (mutated) graph, re-perturbing only affected levels.

        Diffs the current graph against ``release``'s provenance fingerprints
        (:func:`repro.core.refresh.refresh_release`): levels the mutations
        did not touch are reused byte-for-byte and spend **zero** new budget;
        the ledger is charged only the worst affected level's cost — nothing
        at all when no level moved.  The shared hierarchy is reused, so no
        specialization budget is spent either.

        Parameters
        ----------
        release:
            Which of this publisher's releases to refresh (default: the most
            recent).  Must have been produced by :meth:`release` — the
            publisher keeps each release's frozen noise-seed material, which
            is what makes the refreshed release bit-identical to disclosing
            the mutated graph from scratch under the same seed.
        store:
            When given, the refreshed release is persisted twice: once under
            a revision-qualified archive key (``<key>-r<revision>``, routed
            through :meth:`ReleaseStore.get_or_create` so refreshing the
            same revision twice reuses the stored artefact and spends
            nothing), and once under ``key`` itself — the live alias the
            serving layer watches, whose fingerprint change clears staleness
            and invalidates response caches.
        key:
            Base store key (required with ``store``).
        label:
            Optional ledger label (default ``refresh-<n>``).
        """
        if release is None:
            if not self._release_records:
                raise DisclosureError("nothing to refresh: no release was produced yet")
            record = self._release_records[-1]
        else:
            record = next(
                (rec for rec in self._release_records if rec["release"] is release), None
            )
            if record is None:
                raise ValidationError(
                    "refresh requires a release produced by this publisher "
                    "(its noise-seed material is needed to reproduce the levels)"
                )
        if self._hierarchy is None:  # pragma: no cover - release() always builds it
            raise DisclosureError("cannot refresh without the shared hierarchy")
        if store is not None and key is None:
            raise ValidationError("refresh(store=...) requires an explicit key")

        self._release_counter += 1
        spend_label = label or f"refresh-{self._release_counter}"
        discloser: MultiLevelDiscloser = record["discloser"]

        def run_refresh() -> RefreshResult:
            result = discloser.refresh(
                record["release"], self.graph, hierarchy=self._hierarchy
            )
            if not self.ledger.can_spend(result.cost):
                raise BudgetExceededError(result.cost.to_dict(), self._remaining_dict())
            self.ledger.charge(result.cost, label=spend_label)
            return result

        if store is None:
            result = run_refresh()
            self._releases.append(result.release)
            return result

        archive_key = f"{key}-r{self.graph.revision}"
        holder: Dict[str, RefreshResult] = {}

        def builder() -> MultiLevelRelease:
            holder["result"] = run_refresh()
            return holder["result"].release

        stored, created = store.get_or_create(archive_key, builder)
        if created:
            result = holder["result"]
            result.release = stored
            self._releases.append(stored)
        else:
            # This revision was already refreshed (possibly by another
            # process): reuse the stored artefact, spend nothing.
            provenance = stored.provenance
            result = RefreshResult(
                release=stored,
                affected_levels=list(provenance.get("affected_levels", [])),
                reused_levels=list(provenance.get("reused_levels", [])),
                reused_from_store=True,
            )
        # Republish the live alias so serving sees the refresh (fingerprint
        # change -> response-cache invalidation, staleness cleared).
        store.save(result.release, key=key)
        result.store_key = archive_key
        return result

    def releases(self) -> List[MultiLevelRelease]:
        """All releases produced so far, in order."""
        return list(self._releases)

    def spent(self) -> PrivacyCost:
        """Cumulative privacy spend (specialization + all releases)."""
        return self.ledger.spent()

    def remaining(self) -> Optional[PrivacyCost]:
        """Remaining budget, or ``None`` when unenforced."""
        return self.ledger.remaining()

    # ------------------------------------------------------------------
    # Per-role exports
    # ------------------------------------------------------------------
    def export_views(
        self,
        release: MultiLevelRelease,
        policy: AccessPolicy,
        directory: Union[str, Path],
        store: Optional[ReleaseStore] = None,
    ) -> Dict[str, Path]:
        """Write one JSON document per role containing only that role's view.

        Returns ``{role: written path}``.  Each document embeds the level
        release and the role's information-level tag, never the full
        multi-level release, so handing a file to a user cannot leak a finer
        level than their privilege allows.

        When a :class:`~repro.core.store.ReleaseStore` is given, the full
        release is persisted there first and every role document records the
        store key, so a serving layer can later re-derive any view from the
        stored artefact instead of re-disclosing.
        """
        directory = Path(directory)
        release_key: Optional[str] = None
        if store is not None:
            release_key = store.save(release)
        written: Dict[str, Path] = {}
        for role in policy.roles():
            view: LevelRelease = policy.view_for(role, release)
            document = {
                "role": role,
                "information_level": policy.information_level(role).name,
                "dataset": release.dataset_name,
                "release": view.to_dict(),
            }
            if release_key is not None:
                document["release_key"] = release_key
            written[role] = to_json_file(document, directory / f"{role}.json")
        return written

    def serve(
        self,
        release: MultiLevelRelease,
        policy: AccessPolicy,
        store: Union[ReleaseStore, str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int = 1,
    ):
        """Persist ``release`` into ``store`` and return a ready (unstarted)
        server for it.

        The returned server holds no reference to the publisher, the graph,
        or the disclosure pipeline — only to the store and the policy — so
        once it is started the budget-spending half of the system can shut
        down entirely while consumers keep fetching their views.  Call
        ``.start()`` (non-blocking) or ``.serve_forever()`` on the result.

        With ``processes > 1`` the result is a
        :class:`~repro.serving.fleet.ServerFleet` — N ``SO_REUSEPORT``
        worker processes over the store *directory* — so the store must be
        directory-backed (each worker opens its own handle; an in-memory
        store cannot cross process boundaries).  Otherwise a single
        :class:`~repro.serving.server.ReleaseServer` is returned.
        """
        from repro.serving.server import DEFAULT_CACHE_SIZE, ReleaseServer

        if not isinstance(store, ReleaseStore):
            store = ReleaseStore(store, cache_size=DEFAULT_CACHE_SIZE)
        store.save(release)
        if processes > 1:
            from repro.serving.fleet import ServerFleet

            if store.root is None:
                raise ValidationError(
                    "serve(processes>1) needs a directory-backed store: "
                    f"{store.backend.describe()} cannot be shared across processes"
                )
            return ServerFleet(
                store.root, policy, host=host, port=port, processes=processes
            )
        return ReleaseServer(store=store, policy=policy, host=host, port=port)
