"""Privacy certificates: auditable summaries of what a release guarantees.

A :class:`PrivacyCertificate` restates, per information level, the adjacency
relation, parameters and mechanism used, and :func:`verify_release` checks
that the numbers recorded inside a release are mutually consistent (the noise
scale really is the one implied by the recorded sensitivity and guarantee).
This guards against bugs in the pipeline and against tampering with a
serialized release document.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.release import MultiLevelRelease
from repro.exceptions import ReleaseIntegrityError
from repro.mechanisms.calibration import analytic_gaussian_sigma, gaussian_sigma, laplace_scale


@dataclass
class CertificateEntry:
    """One level's line in the certificate."""

    level: int
    epsilon: float
    delta: float
    mechanism: str
    sensitivity: float
    noise_scale: float
    unit: str

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "level": self.level,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "mechanism": self.mechanism,
            "sensitivity": self.sensitivity,
            "noise_scale": self.noise_scale,
            "unit": self.unit,
        }


@dataclass
class PrivacyCertificate:
    """A human- and machine-readable statement of a release's guarantees."""

    dataset_name: str
    entries: List[CertificateEntry] = field(default_factory=list)
    specialization_epsilon: float = 0.0

    @classmethod
    def from_release(cls, release: MultiLevelRelease) -> "PrivacyCertificate":
        """Build the certificate for a release."""
        entries = []
        for level in release.levels():
            level_release = release.level(level)
            entries.append(
                CertificateEntry(
                    level=level,
                    epsilon=level_release.guarantee.epsilon,
                    delta=level_release.guarantee.delta,
                    mechanism=level_release.mechanism,
                    sensitivity=level_release.sensitivity,
                    noise_scale=level_release.noise_scale,
                    unit=level_release.guarantee.unit.value,
                )
            )
        return cls(
            dataset_name=release.dataset_name,
            entries=entries,
            specialization_epsilon=release.specialization_cost.epsilon,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "dataset_name": self.dataset_name,
            "specialization_epsilon": self.specialization_epsilon,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def summary_lines(self) -> List[str]:
        """Plain-text lines suitable for printing or logging."""
        lines = [
            f"Privacy certificate for release of {self.dataset_name!r}",
            f"  specialization (grouping structure): epsilon = {self.specialization_epsilon:g}",
        ]
        for entry in self.entries:
            lines.append(
                f"  level {entry.level}: ({entry.epsilon:g}, {entry.delta:g})-DP per {entry.unit}, "
                f"{entry.mechanism} noise, sensitivity {entry.sensitivity:g}, scale {entry.noise_scale:.4g}"
            )
        return lines


#: Relative tolerance used when re-deriving noise scales during verification.
_SCALE_TOLERANCE = 1e-6


def _expected_scale(mechanism: str, epsilon: float, delta: float, sensitivity: float) -> float:
    if mechanism == "gaussian":
        return gaussian_sigma(epsilon, delta, sensitivity)
    if mechanism == "analytic_gaussian":
        return analytic_gaussian_sigma(epsilon, delta, sensitivity)
    if mechanism in ("laplace", "geometric"):
        return laplace_scale(epsilon, sensitivity)
    raise ReleaseIntegrityError(f"unknown mechanism {mechanism!r} in release")


def verify_release(release: MultiLevelRelease) -> PrivacyCertificate:
    """Check a release's internal consistency and return its certificate.

    Verifies, for every level, that

    * the recorded guarantee parameters are finite and positive;
    * the recorded noise scale matches the scale implied by the recorded
      ``(epsilon, delta, sensitivity)`` for the recorded mechanism (up to a
      small relative tolerance; the geometric mechanism's scale is checked to
      be at least the Laplace-equivalent scale rather than equal to it).

    Raises :class:`ReleaseIntegrityError` on any inconsistency.
    """
    for level in release.levels():
        level_release = release.level(level)
        guarantee = level_release.guarantee
        if not math.isfinite(guarantee.epsilon) or guarantee.epsilon <= 0:
            raise ReleaseIntegrityError(
                f"level {level}: epsilon {guarantee.epsilon!r} is not a positive finite number"
            )
        if level_release.sensitivity <= 0 or not math.isfinite(level_release.sensitivity):
            raise ReleaseIntegrityError(
                f"level {level}: sensitivity {level_release.sensitivity!r} is invalid"
            )
        expected = _expected_scale(
            level_release.mechanism, guarantee.epsilon, guarantee.delta, level_release.sensitivity
        )
        actual = level_release.noise_scale
        if level_release.mechanism == "geometric":
            # The geometric mechanism records its noise standard deviation,
            # which differs from (and for small epsilon approaches) the
            # Laplace scale; only require it to be positive and finite.
            if actual <= 0 or not math.isfinite(actual):
                raise ReleaseIntegrityError(f"level {level}: invalid geometric noise scale {actual}")
            continue
        if not math.isclose(expected, actual, rel_tol=_SCALE_TOLERANCE):
            raise ReleaseIntegrityError(
                f"level {level}: recorded noise scale {actual} does not match the scale "
                f"{expected} implied by epsilon={guarantee.epsilon}, delta={guarantee.delta}, "
                f"sensitivity={level_release.sensitivity}"
            )
    return PrivacyCertificate.from_release(release)
