"""Level-selective re-disclosure of a mutated graph (the refresh path).

A full re-disclosure after every graph mutation re-perturbs — and re-spends
privacy budget on — every level, even when one edge changed inside one
group.  :func:`refresh_release` instead re-runs only the *cheap* pipeline
stages (compile + calibrate) on the mutated graph, fingerprints every level
(:func:`repro.core.common.fingerprint_level`), and diffs the fingerprints
against the ones stamped into the existing release's provenance:

* **Unaffected levels** — fingerprint unchanged — keep their stored
  :class:`~repro.core.release.LevelRelease` byte-for-byte.  No noise is
  drawn and **zero** new privacy budget is spent on them.
* **Affected levels** are re-perturbed through the normal
  :func:`~repro.core.pipeline.perturb_level` task under the *original*
  disclosure's noise-seed material, so the refreshed release is bit-identical
  to what a from-scratch disclosure of the mutated graph under the same seed
  would have produced (``tests/test_refresh.py`` proves this).

The fingerprint captures everything that determines a level's output given
its seed (true answers, sensitivity, epsilon, mechanism, delta, partition
content), so the reuse decision is *honest*: a level is only ever reused
when recomputing it would have reproduced the stored bytes anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.accounting.budget import BudgetLedger
from repro.core.common import WorkloadLike, normalise_workload
from repro.core.pipeline import (
    AssembleStage,
    CompileStage,
    GroupCalibrateStage,
    PipelineContext,
    level_fingerprints_for,
    perturb_level,
)
from repro.core.release import MultiLevelRelease
from repro.exceptions import DisclosureError
from repro.execution import ExecutorSpec, executor_name, executor_scope
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.mechanisms.base import PrivacyCost

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import DisclosureConfig


@dataclass
class RefreshResult:
    """What one :func:`refresh_release` call produced.

    ``cost`` is the worst per-affected-level spend — ``PrivacyCost(0, 0)``
    when every level was reused.  ``store_key`` / ``reused_from_store`` are
    filled in by :meth:`~repro.core.publisher.GraphPublisher.refresh` when
    the refresh routes through a :class:`~repro.core.store.ReleaseStore`.
    """

    release: MultiLevelRelease
    affected_levels: List[int] = field(default_factory=list)
    reused_levels: List[int] = field(default_factory=list)
    cost: PrivacyCost = field(default_factory=lambda: PrivacyCost(0.0, 0.0))
    store_key: Optional[str] = None
    reused_from_store: bool = False

    @property
    def levels_reperturbed(self) -> int:
        """Convenience count for logs and CLI output."""
        return len(self.affected_levels)


def refresh_release(
    release: MultiLevelRelease,
    graph: BipartiteGraph,
    hierarchy: GroupHierarchy,
    *,
    config: "DisclosureConfig",
    workload: WorkloadLike = None,
    noise_seed: Optional[np.random.SeedSequence] = None,
    ledger: Optional[BudgetLedger] = None,
    executor: ExecutorSpec = None,
    max_workers: Optional[int] = None,
    revision: Optional[int] = None,
) -> RefreshResult:
    """Re-disclose ``graph`` against ``release``, re-perturbing only what changed.

    Parameters
    ----------
    release:
        The existing release to refresh (its provenance fingerprints drive
        the reuse decision; a release without fingerprints refreshes every
        level).
    graph, hierarchy:
        The *current* graph and the grouping hierarchy.  Specialization is
        never re-run here — pass the hierarchy the release was built with
        (or a freshly built one; changed partitions simply show up as
        affected levels).
    config, workload:
        The disclosure configuration and query workload, which must describe
        the same release family (normally read back from the stored release).
    noise_seed:
        The seed material of the *original* disclosure
        (:meth:`DiscloseSeedStream.seed_for`).  Affected levels derive their
        per-level streams from it, which is what makes the refreshed release
        bit-identical to a from-scratch same-seed disclosure.
    ledger:
        Charged only for the affected levels' noise.
    revision:
        Overrides the graph revision recorded in the new provenance (the CLI
        uses this to keep file-loaded revisions monotonic per refresh).
    """
    if graph.num_nodes() == 0:
        raise DisclosureError("cannot refresh against an empty graph")
    workload = normalise_workload(workload)
    executor_spec = executor if executor is not None else config.executor
    release_config = config.to_dict()
    release_config["executor"] = executor_name(executor_spec)
    context = PipelineContext(
        graph=graph,
        engine=config.engine,
        workload=workload,
        hierarchy=hierarchy,
        ledger=ledger,
        executor=executor_spec,
        max_workers=max_workers if max_workers is not None else config.max_workers,
        noise_seed=noise_seed,
        requested_levels=config.resolved_release_levels(),
        config=config,
        release_config=release_config,
    )
    # Cheap stages only: evaluate answers and calibrate every level ...
    CompileStage().run(context)
    GroupCalibrateStage().run(context)
    fingerprints = level_fingerprints_for(context)

    # ... then re-perturb only the levels whose fingerprints moved.
    old_fingerprints: Dict[str, str] = dict(release.provenance.get("level_fingerprints", {}))
    affected = [
        plan
        for plan in context.plans
        if plan.level not in release.level_releases
        or old_fingerprints.get(str(plan.level)) != fingerprints[str(plan.level)]
    ]
    affected_levels = sorted(plan.level for plan in affected)
    reused_levels = sorted(level for level in context.levels if level not in affected_levels)

    context.plans = affected
    if affected:
        task = partial(perturb_level, true_answers=context.true_answers, batched=context.batched)
        with executor_scope(executor_spec, max_workers=context.max_workers) as pool:
            context.outcomes = pool.map(task, affected)
    else:
        context.outcomes = []

    # Assemble charges the ledger per (affected) outcome; specialization was
    # not re-run, so its cost carries over from the original release.
    context.specialization_cost = release.specialization_cost
    AssembleStage().run(context)
    refreshed = context.release
    for level in reused_levels:
        refreshed.level_releases[level] = release.level_releases[level]

    cost = PrivacyCost(
        max((outcome.cost.epsilon for outcome in context.outcomes), default=0.0),
        max((outcome.cost.delta for outcome in context.outcomes), default=0.0),
    )
    refreshed.provenance = {
        "graph_revision": int(revision) if revision is not None else graph.revision,
        "level_fingerprints": fingerprints,
        "refreshed_from_revision": release.provenance.get("graph_revision"),
        "affected_levels": affected_levels,
        "reused_levels": reused_levels,
    }
    if "noise_draw" in release.provenance:
        refreshed.provenance["noise_draw"] = release.provenance["noise_draw"]
    return RefreshResult(
        release=refreshed,
        affected_levels=affected_levels,
        reused_levels=reused_levels,
        cost=cost,
    )
