"""Access levels: mapping user privileges onto information levels.

The paper motivates multi-level disclosure with users that hold different
access privileges: a user entitled to information level ``I_{9,1}`` receives
an answer that is both more sensitive and more accurate than the one handed
to a user entitled only to ``I_{9,7}``.  :class:`AccessPolicy` encodes that
mapping and produces per-user views of a :class:`~repro.core.release.MultiLevelRelease`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.exceptions import AccessLevelError, ValidationError
from repro.core.release import LevelRelease, MultiLevelRelease


@dataclass(frozen=True)
class InformationLevel:
    """A named information level ``I_{top, level}``.

    ``top`` is the hierarchy's top level index (9 in the paper), ``level`` the
    protection level the answers are calibrated to.  Lower ``level`` means
    finer groups, less noise, and a higher required privilege.
    """

    top: int
    level: int

    def __post_init__(self):
        if self.level < 0 or self.level > self.top:
            raise ValidationError(f"level must be in [0, {self.top}], got {self.level}")

    @property
    def name(self) -> str:
        """The paper's notation, e.g. ``"I9,3"``."""
        return f"I{self.top},{self.level}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class AccessPolicy:
    """Maps named user roles to the information level they may read.

    Parameters
    ----------
    role_levels:
        Mapping ``role name -> hierarchy level``.  Lower levels are more
        privileged.
    top_level:
        The hierarchy's top level index, used only for the ``I_{top, i}``
        naming.

    Examples
    --------
    >>> policy = AccessPolicy({"analyst": 1, "partner": 5, "public": 7}, top_level=9)
    >>> policy.information_level("partner").name
    'I9,5'
    """

    def __init__(self, role_levels: Mapping[str, int], top_level: int):
        if not role_levels:
            raise ValidationError("role_levels must not be empty")
        self.top_level = int(top_level)
        self._role_levels: Dict[str, int] = {}
        for role, level in role_levels.items():
            level = int(level)
            if level < 0 or level > self.top_level:
                raise ValidationError(
                    f"role {role!r} maps to level {level}, outside [0, {self.top_level}]"
                )
            self._role_levels[str(role)] = level

    def roles(self) -> List[str]:
        """All configured roles, most privileged (lowest level) first."""
        return sorted(self._role_levels, key=lambda role: self._role_levels[role])

    def level_for(self, role: str) -> int:
        """The hierarchy level a role is entitled to."""
        if role not in self._role_levels:
            raise AccessLevelError(role, self._role_levels.keys())
        return self._role_levels[role]

    def information_level(self, role: str) -> InformationLevel:
        """The ``I_{top, i}`` tag for a role."""
        return InformationLevel(top=self.top_level, level=self.level_for(role))

    def view_for(self, role: str, release: MultiLevelRelease) -> LevelRelease:
        """Return the single :class:`LevelRelease` a role may read.

        A role entitled to level ``i`` receives exactly the level-``i``
        release.  If the release does not contain that level (e.g. the
        publisher chose not to materialise it), the nearest *coarser* level is
        returned — never a finer one, so a user can never read data protected
        below their privilege.
        """
        target = self.level_for(role)
        available = release.levels()
        if target in available:
            return release.level(target)
        coarser = [level for level in available if level > target]
        if not coarser:
            raise AccessLevelError(target, available)
        return release.level(min(coarser))

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"top_level": self.top_level, "role_levels": dict(self._role_levels)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "AccessPolicy":
        """Inverse of :meth:`to_dict`."""
        return cls(role_levels=data["role_levels"], top_level=data["top_level"])

    @classmethod
    def uniform_tiers(cls, levels: List[int], top_level: int, prefix: str = "tier") -> "AccessPolicy":
        """One role per released level, named ``tier0`` (most privileged) upward."""
        role_levels = {f"{prefix}{index}": level for index, level in enumerate(sorted(levels))}
        return cls(role_levels=role_levels, top_level=top_level)
