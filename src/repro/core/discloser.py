"""The multi-level group-private discloser (the paper's Section III pipeline)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.accounting.allocation import make_allocation
from repro.accounting.budget import BudgetLedger
from repro.core.config import DisclosureConfig
from repro.core.release import LevelRelease, MultiLevelRelease
from repro.exceptions import DisclosureError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.specialization import Specializer
from repro.mechanisms.base import NumericMechanism, PrivacyCost
from repro.mechanisms.gaussian import AnalyticGaussianMechanism, GaussianMechanism
from repro.mechanisms.geometric import GeometricMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.privacy.guarantees import GroupPrivacyGuarantee, PrivacyUnit
from repro.queries.base import Query
from repro.queries.counts import TotalAssociationCountQuery
from repro.queries.workload import QueryWorkload, noisy_workload_answers
from repro.utils.rng import RandomState, derive_rng


class MultiLevelDiscloser:
    """Group differential privacy-preserving disclosure of a bipartite graph.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.DisclosureConfig`; defaults reproduce the
        paper's setup (9 levels, 4-way splits, Gaussian noise, per-level
        ``epsilon_g``).
    specializer:
        The phase-1 specializer.  Defaults to an Exponential-Mechanism
        :class:`~repro.grouping.specialization.Specializer` built from
        ``config.specialization``; pass a
        :class:`~repro.grouping.specialization.DeterministicSpecializer` or
        :class:`~repro.grouping.specialization.RandomSpecializer` for the
        ablations.
    queries:
        The workload released at every level.  Defaults to the paper's single
        query, :class:`~repro.queries.counts.TotalAssociationCountQuery`.
    rng:
        Seed, generator, or ``None``.  Phase 1 and phase 2 use independent
        streams derived from this value, so re-running with the same seed
        reproduces the release exactly.

    Examples
    --------
    >>> from repro.datasets import generate_dblp_like
    >>> graph = generate_dblp_like(num_authors=200, num_papers=300, seed=1)
    >>> discloser = MultiLevelDiscloser(DisclosureConfig.paper_defaults(epsilon_g=0.5), rng=7)
    >>> release = discloser.disclose(graph)
    >>> sorted(release.levels())[0]
    0
    """

    def __init__(
        self,
        config: Optional[DisclosureConfig] = None,
        specializer: Optional[Specializer] = None,
        queries: Union[None, Query, Iterable[Query], QueryWorkload] = None,
        rng: RandomState = None,
    ):
        self.config = config if config is not None else DisclosureConfig()
        self._phase1_rng = derive_rng(rng, "phase1-specialization")
        self._phase2_rng = derive_rng(rng, "phase2-noise")
        self.specializer = (
            specializer
            if specializer is not None
            else Specializer(config=self.config.specialization, rng=self._phase1_rng)
        )
        self.workload = self._normalise_workload(queries)
        self.ledger = BudgetLedger()

    @staticmethod
    def _normalise_workload(
        queries: Union[None, Query, Iterable[Query], QueryWorkload]
    ) -> QueryWorkload:
        if queries is None:
            return QueryWorkload([TotalAssociationCountQuery()], name="paper-count-workload")
        if isinstance(queries, QueryWorkload):
            return queries
        if isinstance(queries, Query):
            return QueryWorkload([queries])
        return QueryWorkload(list(queries))

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def build_hierarchy(self, graph: BipartiteGraph) -> GroupHierarchy:
        """Run only the specialization phase and return the hierarchy."""
        if self.config.engine == "vectorized":
            graph.arrays()  # compile once so split scoring takes the array fast path
        result = self.specializer.build(graph)
        self.ledger.charge(result.privacy_cost, label="specialization")
        return result.hierarchy

    # ------------------------------------------------------------------
    # Phase 2 helpers
    # ------------------------------------------------------------------
    def _per_level_epsilon(
        self, levels: List[int], sensitivities: Dict[int, float]
    ) -> Dict[int, float]:
        """Resolve the epsilon assigned to each released level."""
        config = self.config
        if config.budget_mode == "per_level":
            return {level: config.epsilon_g for level in levels}
        strategy_kwargs = {}
        if config.allocation == "geometric":
            strategy_kwargs["ratio"] = config.allocation_ratio
        strategy = make_allocation(config.allocation, **strategy_kwargs)
        return strategy.allocate(config.epsilon_g, levels, sensitivities=sensitivities)

    def _make_mechanism(self, epsilon: float, sensitivity: float) -> NumericMechanism:
        """Instantiate the configured phase-2 mechanism for one level."""
        name = self.config.mechanism
        if name == "gaussian":
            return GaussianMechanism(
                epsilon=epsilon, delta=self.config.delta, sensitivity=sensitivity, rng=self._phase2_rng
            )
        if name == "analytic_gaussian":
            return AnalyticGaussianMechanism(
                epsilon=epsilon, delta=self.config.delta, sensitivity=sensitivity, rng=self._phase2_rng
            )
        if name == "laplace":
            return LaplaceMechanism(epsilon=epsilon, sensitivity=sensitivity, rng=self._phase2_rng)
        if name == "geometric":
            return GeometricMechanism(epsilon=epsilon, sensitivity=sensitivity, rng=self._phase2_rng)
        raise DisclosureError(f"unsupported mechanism {name!r}")  # pragma: no cover - config validates

    def _level_sensitivity(self, graph: BipartiteGraph, hierarchy: GroupHierarchy, level: int) -> float:
        """Group-level sensitivity of the workload at one hierarchy level."""
        partition = hierarchy.partition_at(level)
        if self.config.uses_l2_sensitivity():
            return self.workload.l2_sensitivity(graph, adjacency="group", partition=partition)
        return self.workload.l1_sensitivity(graph, adjacency="group", partition=partition)

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def disclose(
        self,
        graph: BipartiteGraph,
        hierarchy: Optional[GroupHierarchy] = None,
    ) -> MultiLevelRelease:
        """Run both phases and return the multi-level release.

        Parameters
        ----------
        graph:
            The bipartite association graph to disclose.
        hierarchy:
            An existing group hierarchy to reuse (phase 1 is skipped and no
            specialization budget is charged).  Useful when the same grouping
            backs several releases, and in tests.
        """
        if graph.num_nodes() == 0:
            raise DisclosureError("cannot disclose an empty graph")

        # In vectorized mode compile the array view once, up front: phase-1
        # split scoring, sensitivity computation and workload evaluation all
        # pick it up through the graph's cache.
        arrays = graph.arrays() if self.config.engine == "vectorized" else None

        specialization_cost = PrivacyCost(0.0, 0.0)
        if hierarchy is None:
            result = self.specializer.build(graph)
            hierarchy = result.hierarchy
            specialization_cost = result.privacy_cost
            self.ledger.charge(specialization_cost, label="specialization")

        requested_levels = self.config.resolved_release_levels()
        levels = [level for level in requested_levels if hierarchy.has_level(level)]
        if not levels:
            raise DisclosureError(
                f"none of the requested levels {requested_levels} exist in the hierarchy "
                f"(available: {hierarchy.level_indices()})"
            )

        sensitivities = {
            level: self._level_sensitivity(graph, hierarchy, level) for level in levels
        }
        epsilons = self._per_level_epsilon(levels, sensitivities)
        if arrays is not None:
            true_answers = self.workload.evaluate_batch(graph, arrays=arrays)
        else:
            true_answers = self.workload.evaluate(graph)

        level_releases: Dict[int, LevelRelease] = {}
        for level in levels:
            partition = hierarchy.partition_at(level)
            sensitivity = sensitivities[level]
            epsilon = epsilons[level]
            mechanism = self._make_mechanism(epsilon, sensitivity)
            cost = mechanism.privacy_cost()
            self.ledger.charge(cost, label=f"noise-injection-level-{level}")

            # Vectorized engine: one batched noise draw covers the level's workload.
            answers = noisy_workload_answers(mechanism, true_answers, batched=arrays is not None)

            guarantee = GroupPrivacyGuarantee(
                epsilon=cost.epsilon,
                delta=cost.delta,
                unit=PrivacyUnit.GROUP,
                description=(
                    f"group differential privacy at hierarchy level {level} "
                    f"({partition.num_groups()} groups)"
                ),
                level=level,
                num_groups=partition.num_groups(),
                max_group_size=partition.max_group_size(),
            )
            level_releases[level] = LevelRelease(
                level=level,
                answers=answers,
                guarantee=guarantee,
                mechanism=self.config.mechanism,
                noise_scale=mechanism.noise_scale(),
                sensitivity=sensitivity,
            )

        return MultiLevelRelease(
            dataset_name=graph.name,
            level_releases=level_releases,
            level_statistics=hierarchy.level_statistics(),
            specialization_cost=specialization_cost,
            config=self.config.to_dict(),
        )
