"""The multi-level group-private discloser (the paper's Section III pipeline)."""

from __future__ import annotations

from typing import Optional

from repro.accounting.budget import BudgetLedger
from repro.core.common import DiscloseSeedStream, WorkloadLike, normalise_workload
from repro.core.config import DisclosureConfig
from repro.core.pipeline import DisclosurePipeline, PipelineContext
from repro.core.refresh import RefreshResult, refresh_release
from repro.core.release import MultiLevelRelease
from repro.execution import ExecutorSpec, executor_name
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.specialization import Specializer
from repro.utils.rng import RandomState, derive_rng


class MultiLevelDiscloser:
    """Group differential privacy-preserving disclosure of a bipartite graph.

    A thin front-end over the staged
    :class:`~repro.core.pipeline.DisclosurePipeline`
    (``specialize -> compile -> calibrate -> perturb -> assemble``): this
    class owns the configuration, the specializer, the budget ledger and the
    derived random streams, and builds one pipeline context per
    :meth:`disclose` call.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.DisclosureConfig`; defaults reproduce the
        paper's setup (9 levels, 4-way splits, Gaussian noise, per-level
        ``epsilon_g``).  ``config.executor`` selects where the independent
        per-level perturbations run (``"serial"``, ``"thread"`` or
        ``"process"``) — the release is bit-identical in all three cases.
    specializer:
        The phase-1 specializer.  Defaults to an Exponential-Mechanism
        :class:`~repro.grouping.specialization.Specializer` built from
        ``config.specialization``; pass a
        :class:`~repro.grouping.specialization.DeterministicSpecializer` or
        :class:`~repro.grouping.specialization.RandomSpecializer` for the
        ablations.
    queries:
        The workload released at every level.  Defaults to the paper's single
        query, :class:`~repro.queries.counts.TotalAssociationCountQuery`.
    rng:
        Seed, generator, or ``None``.  Phase 1 and phase 2 use independent
        streams derived from this value, and each released level derives its
        own noise stream, so re-running with the same seed reproduces the
        release exactly regardless of the executor.

    Examples
    --------
    >>> from repro.datasets import generate_dblp_like
    >>> graph = generate_dblp_like(num_authors=200, num_papers=300, seed=1)
    >>> discloser = MultiLevelDiscloser(DisclosureConfig.paper_defaults(epsilon_g=0.5), rng=7)
    >>> release = discloser.disclose(graph)
    >>> sorted(release.levels())[0]
    0
    """

    def __init__(
        self,
        config: Optional[DisclosureConfig] = None,
        specializer: Optional[Specializer] = None,
        queries: WorkloadLike = None,
        rng: RandomState = None,
    ):
        self.config = config if config is not None else DisclosureConfig()
        self._phase1_rng = derive_rng(rng, "phase1-specialization")
        # Seed *material* rather than a live generator: each disclose call
        # (and, below it, each level) derives its own independent stream, so
        # the noise does not depend on generator call order — the property
        # that makes serial/thread/process execution bit-identical.
        self._noise_seeds = DiscloseSeedStream(rng, "phase2-noise")
        self.specializer = (
            specializer
            if specializer is not None
            else Specializer(config=self.config.specialization, rng=self._phase1_rng)
        )
        self.workload = normalise_workload(queries)
        self.ledger = BudgetLedger()
        self.pipeline = DisclosurePipeline.standard()

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def build_hierarchy(self, graph: BipartiteGraph) -> GroupHierarchy:
        """Run only the specialization phase and return the hierarchy."""
        if self.config.engine == "vectorized":
            graph.arrays()  # compile once so split scoring takes the array fast path
        result = self.specializer.build(graph)
        self.ledger.charge(result.privacy_cost, label="specialization")
        return result.hierarchy

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def disclose(
        self,
        graph: BipartiteGraph,
        hierarchy: Optional[GroupHierarchy] = None,
        executor: ExecutorSpec = None,
    ) -> MultiLevelRelease:
        """Run the staged pipeline and return the multi-level release.

        Parameters
        ----------
        graph:
            The bipartite association graph to disclose.
        hierarchy:
            An existing group hierarchy to reuse (phase 1 is skipped and no
            specialization budget is charged).  Useful when the same grouping
            backs several releases, and in tests.
        executor:
            Override ``config.executor`` for this call — an executor name or
            a live :class:`~repro.execution.Executor` instance (e.g. a shared
            process pool amortised across many disclosures).
        """
        executor_spec = executor if executor is not None else self.config.executor
        # The persisted config must record the executor that actually ran
        # (provenance), which a per-call override makes different from
        # config.executor.
        release_config = self.config.to_dict()
        release_config["executor"] = executor_name(executor_spec)
        context = PipelineContext(
            graph=graph,
            engine=self.config.engine,
            workload=self.workload,
            hierarchy=hierarchy,
            specializer=self.specializer,
            ledger=self.ledger,
            executor=executor_spec,
            max_workers=self.config.max_workers,
            noise_seed=self._noise_seeds.next(),
            requested_levels=self.config.resolved_release_levels(),
            config=self.config,
            release_config=release_config,
        )
        release = self.pipeline.run(context).release
        # Which stream draw fed this release: refresh re-derives the same
        # seed material from it (DiscloseSeedStream.seed_for), so affected
        # levels are re-perturbed with exactly the original noise streams.
        release.provenance["noise_draw"] = self._noise_seeds.calls
        return release

    # ------------------------------------------------------------------
    # Incremental re-disclosure
    # ------------------------------------------------------------------
    def refresh(
        self,
        release: MultiLevelRelease,
        graph: BipartiteGraph,
        hierarchy: Optional[GroupHierarchy] = None,
        executor: ExecutorSpec = None,
        revision: Optional[int] = None,
    ) -> RefreshResult:
        """Re-disclose a mutated ``graph``, re-perturbing only changed levels.

        Diffs per-level content fingerprints against ``release``'s provenance
        (see :func:`repro.core.refresh.refresh_release`): levels the mutation
        did not affect are reused byte-for-byte with **zero** new privacy
        spend, affected levels are re-perturbed under the original
        disclosure's recorded noise draw — so the result is bit-identical to
        a from-scratch :meth:`disclose` of the mutated graph under the same
        seed.

        Parameters
        ----------
        release:
            An earlier release of the same family (normally loaded back from
            a :class:`~repro.core.store.ReleaseStore`).
        graph:
            The mutated graph.
        hierarchy:
            The hierarchy to calibrate against.  When omitted, phase 1 runs
            once via :meth:`build_hierarchy` (charging its specialization
            budget) — the path a fresh process takes when refreshing a stored
            release.
        executor:
            Per-call override of ``config.executor``, as in :meth:`disclose`.
        revision:
            Overrides the graph revision stamped into the refreshed
            provenance.  A graph re-loaded from an edge list restarts its
            revision counter at its construction mutations, so the CLI keeps
            stored revisions monotonic by passing
            ``max(graph.revision, stored revision + 1)``.
        """
        if hierarchy is None:
            hierarchy = self.build_hierarchy(graph)
        noise_draw = int(release.provenance.get("noise_draw", 1))
        return refresh_release(
            release,
            graph,
            hierarchy,
            config=self.config,
            workload=self.workload,
            noise_seed=self._noise_seeds.seed_for(noise_draw),
            ledger=self.ledger,
            executor=executor if executor is not None else self.config.executor,
            max_workers=self.config.max_workers,
            revision=revision,
        )
