"""Release objects produced by the disclosure pipeline.

A :class:`MultiLevelRelease` is the artefact a data publisher hands out: one
:class:`LevelRelease` per information level, each containing only noisy
answers, the noise parameters, and the privacy guarantee — never the true
answers or the raw group memberships (only per-level size statistics are
retained so a user can interpret the granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.exceptions import AccessLevelError, ReleaseIntegrityError
from repro.grouping.hierarchy import LevelStatistics
from repro.mechanisms.base import PrivacyCost
from repro.privacy.guarantees import GroupPrivacyGuarantee, PrivacyGuarantee


@dataclass
class LevelRelease:
    """The noisy answers released for one information level ``I_{L,i}``.

    Parameters
    ----------
    level:
        The hierarchy level whose grouping defines the protection.
    answers:
        Mapping ``query name -> {label: noisy value}``.
    guarantee:
        The group-privacy guarantee the answers satisfy.
    mechanism:
        Name of the noise mechanism used.
    noise_scale:
        The mechanism's scale (Gaussian sigma / Laplace b), recorded so data
        users can form confidence intervals around the noisy answers.
    sensitivity:
        The group-level sensitivity the noise was calibrated to.
    """

    level: int
    answers: Dict[str, Dict[str, float]]
    guarantee: PrivacyGuarantee
    mechanism: str
    noise_scale: float
    sensitivity: float

    def answer(self, query_name: str) -> Dict[str, float]:
        """All noisy values of one query."""
        if query_name not in self.answers:
            raise KeyError(f"query {query_name!r} not in level-{self.level} release")
        return dict(self.answers[query_name])

    def scalar_answer(self, query_name: str) -> float:
        """The noisy value of a scalar query."""
        values = self.answer(query_name)
        if len(values) != 1:
            raise ValueError(f"query {query_name!r} has {len(values)} values, not 1")
        return next(iter(values.values()))

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of a (approximately) ``z``-sigma interval around any answer."""
        return z * self.noise_scale

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "level": self.level,
            "answers": {name: dict(values) for name, values in self.answers.items()},
            "guarantee": self.guarantee.to_dict(),
            "mechanism": self.mechanism,
            "noise_scale": self.noise_scale,
            "sensitivity": self.sensitivity,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LevelRelease":
        """Inverse of :meth:`to_dict`."""
        return cls(
            level=int(data["level"]),
            answers={name: dict(values) for name, values in data["answers"].items()},
            guarantee=GroupPrivacyGuarantee.from_dict(data["guarantee"]),
            mechanism=data["mechanism"],
            noise_scale=float(data["noise_scale"]),
            sensitivity=float(data["sensitivity"]),
        )


@dataclass
class MultiLevelRelease:
    """The full multi-level disclosure artefact.

    Parameters
    ----------
    dataset_name:
        Name of the source graph (informational only).
    level_releases:
        Mapping ``level -> LevelRelease``.
    level_statistics:
        Per-level group-size statistics of the underlying hierarchy (no
        memberships are included).
    specialization_cost:
        Privacy cost of phase 1.
    config:
        The disclosure configuration, as a plain dictionary.
    provenance:
        Where the release came from: the source graph's mutation revision
        (``graph_revision``), one content fingerprint per released level
        (``level_fingerprints``, see :func:`repro.core.refresh.fingerprint_level`)
        and — for refreshed releases — which levels the refresh re-perturbed.
        This is what :meth:`GraphPublisher.refresh` diffs to decide which
        levels a mutated graph actually affected, and what the serving layer
        reads to report staleness.  Contains only counters and hashes, never
        group memberships or true answers.
    """

    dataset_name: str
    level_releases: Dict[int, LevelRelease]
    level_statistics: List[LevelStatistics] = field(default_factory=list)
    specialization_cost: PrivacyCost = field(default_factory=lambda: PrivacyCost(0.0, 0.0))
    config: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)

    def levels(self) -> List[int]:
        """Released levels, ascending (finest first)."""
        return sorted(self.level_releases)

    def level(self, level: int) -> LevelRelease:
        """The release for one level; raises :class:`AccessLevelError` if absent."""
        if level not in self.level_releases:
            raise AccessLevelError(level, self.level_releases.keys())
        return self.level_releases[level]

    def __contains__(self, level: int) -> bool:
        return level in self.level_releases

    def __len__(self) -> int:
        return len(self.level_releases)

    def finest_level(self) -> LevelRelease:
        """The most accurate (lowest-level) release."""
        return self.level(self.levels()[0])

    def coarsest_level(self) -> LevelRelease:
        """The most protected (highest-level) release."""
        return self.level(self.levels()[-1])

    def noise_injection_cost(self) -> PrivacyCost:
        """Worst per-level cost (levels are protected independently).

        Each level's guarantee is stated against its *own* group-adjacency
        relation, so costs across levels are not summed — the release reports
        the per-level guarantee and the maximum as a summary.
        """
        worst_epsilon = 0.0
        worst_delta = 0.0
        for release in self.level_releases.values():
            worst_epsilon = max(worst_epsilon, release.guarantee.epsilon)
            worst_delta = max(worst_delta, release.guarantee.delta)
        return PrivacyCost(worst_epsilon, worst_delta)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "dataset_name": self.dataset_name,
            "levels": {str(level): release.to_dict() for level, release in self.level_releases.items()},
            "level_statistics": [stats.to_dict() for stats in self.level_statistics],
            "specialization_cost": self.specialization_cost.to_dict(),
            "config": dict(self.config),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MultiLevelRelease":
        """Inverse of :meth:`to_dict`."""
        try:
            level_releases = {
                int(level): LevelRelease.from_dict(release) for level, release in data["levels"].items()
            }
            statistics = [
                LevelStatistics(
                    level=int(entry["level"]),
                    num_groups=int(entry["num_groups"]),
                    max_group_size=int(entry["max_group_size"]),
                    min_group_size=int(entry["min_group_size"]),
                    mean_group_size=float(entry["mean_group_size"]),
                )
                for entry in data.get("level_statistics", [])
            ]
            cost_data = data.get("specialization_cost", {"epsilon": 0.0, "delta": 0.0})
            return cls(
                dataset_name=data["dataset_name"],
                level_releases=level_releases,
                level_statistics=statistics,
                specialization_cost=PrivacyCost(cost_data["epsilon"], cost_data.get("delta", 0.0)),
                config=dict(data.get("config", {})),
                provenance=dict(data.get("provenance", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReleaseIntegrityError(f"malformed release document: {exc}") from exc
