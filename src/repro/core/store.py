"""Persistent storage for disclosure releases (JSON structure + npz answers).

A release is an artefact worth keeping: the privacy budget it consumed is
spent whether or not the noisy answers are saved, so a publisher should
persist every release and *serve* it rather than re-disclose.
:class:`ReleaseStore` provides that layer — a directory of releases, each
stored as

* ``release.json`` — the full release document (guarantees, noise scales,
  level statistics, configuration) with the numeric answer vectors replaced
  by references, and
* ``answers.npz`` — the answer vectors themselves as float64 arrays, so the
  round-trip is lossless down to the last bit.

The store is wired through :meth:`repro.core.publisher.GraphPublisher.export_views`,
the ``repro disclose --store`` / ``repro report`` CLI commands and the
evaluation harnesses (:func:`~repro.evaluation.experiments.run_e6_baselines`
resumes from stored releases via :meth:`ReleaseStore.get_or_create`).
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.release import LevelRelease, MultiLevelRelease
from repro.exceptions import ReleaseIntegrityError
from repro.utils.serialization import to_json_file

PathLike = Union[str, Path]

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _slugify(text: str) -> str:
    """Filesystem-safe store key fragment.

    When sanitisation is lossy (the text contained characters outside
    ``[A-Za-z0-9._-]``), a short digest of the *original* text is appended so
    two distinct raw keys can never collide onto one directory (``"exp 1"``
    vs ``"exp-1"``).
    """
    slug = _KEY_RE.sub("-", text.strip()).strip("-")
    if not slug:
        slug = "release"
    if slug != text:
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:8]
        slug = f"{slug}-{digest}"
    return slug


def _strip_answers(document: dict) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Split a release document into JSON structure and numeric arrays.

    Each level/query answer mapping is replaced by its label list plus the
    npz key holding the value vector.
    """
    arrays: Dict[str, np.ndarray] = {}
    levels = {}
    for level_key, level_doc in document["levels"].items():
        level_doc = dict(level_doc)
        answers = {}
        for query_name, values in level_doc["answers"].items():
            npz_key = f"{level_key}|{query_name}"
            labels = list(values.keys())
            arrays[npz_key] = np.asarray([values[label] for label in labels], dtype=float)
            answers[query_name] = {"labels": labels, "npz_key": npz_key}
        level_doc["answers"] = answers
        levels[level_key] = level_doc
    document = dict(document)
    document["levels"] = levels
    return document, arrays


def _restore_answers(document: dict, arrays: Dict[str, np.ndarray]) -> dict:
    """Inverse of :func:`_strip_answers`."""
    levels = {}
    for level_key, level_doc in document["levels"].items():
        level_doc = dict(level_doc)
        answers = {}
        for query_name, ref in level_doc["answers"].items():
            try:
                values = arrays[ref["npz_key"]]
                labels = ref["labels"]
            except (KeyError, TypeError) as exc:
                raise ReleaseIntegrityError(
                    f"answer arrays missing for level {level_key}, query {query_name!r}: {exc}"
                ) from exc
            if len(labels) != len(values):
                raise ReleaseIntegrityError(
                    f"label/value length mismatch for level {level_key}, query {query_name!r}"
                )
            answers[query_name] = {label: float(v) for label, v in zip(labels, values)}
        level_doc["answers"] = answers
        levels[level_key] = level_doc
    document = dict(document)
    document["levels"] = levels
    return document


class ReleaseStore:
    """A directory of persisted multi-level releases, addressed by key.

    Examples
    --------
    >>> import tempfile
    >>> from repro import DisclosureConfig, MultiLevelDiscloser, generate_dblp_like
    >>> from repro.grouping.specialization import SpecializationConfig
    >>> graph = generate_dblp_like(num_authors=80, seed=0)
    >>> config = DisclosureConfig(specialization=SpecializationConfig(num_levels=3))
    >>> release = MultiLevelDiscloser(config, rng=1).disclose(graph)
    >>> store = ReleaseStore(tempfile.mkdtemp())
    >>> key = store.save(release)
    >>> store.load(key).levels() == release.levels()
    True
    """

    #: File names inside each release directory.
    DOCUMENT_NAME = "release.json"
    ANSWERS_NAME = "answers.npz"

    def __init__(self, root: PathLike):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Directory holding one release."""
        return self.root / _slugify(key)

    def exists(self, key: str) -> bool:
        """Whether a release is stored under ``key``."""
        return (self.path_for(key) / self.DOCUMENT_NAME).is_file()

    def keys(self) -> List[str]:
        """All stored release keys, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / self.DOCUMENT_NAME).is_file()
        )

    def _default_key(self, release: MultiLevelRelease) -> str:
        digest = hashlib.sha256(
            json.dumps(release.to_dict(), sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()[:12]
        return f"{_slugify(release.dataset_name or 'release')}-{digest}"

    # ------------------------------------------------------------------
    # Multi-level releases
    # ------------------------------------------------------------------
    def save(self, release: MultiLevelRelease, key: Optional[str] = None) -> str:
        """Persist a release and return its key.

        ``key`` defaults to ``<dataset>-<content hash>``, so saving the same
        release twice is idempotent.
        """
        key = _slugify(key) if key is not None else self._default_key(release)
        directory = self.path_for(key)
        directory.mkdir(parents=True, exist_ok=True)
        document, arrays = _strip_answers(release.to_dict())
        np.savez(directory / self.ANSWERS_NAME, **arrays)
        to_json_file(document, directory / self.DOCUMENT_NAME)
        return key

    def load(self, key: str) -> MultiLevelRelease:
        """Load a release by key.

        Raises :class:`ReleaseIntegrityError` when the key is absent, holds a
        level view rather than a full release, or its on-disk artefacts are
        corrupt — never a raw parse error, so callers (e.g. ``repro report``)
        have one exception type to handle.
        """
        directory = self.path_for(key)
        document_path = directory / self.DOCUMENT_NAME
        if not document_path.is_file():
            raise ReleaseIntegrityError(
                f"no release stored under key {key!r} in {self.root} (have: {self.keys()})"
            )
        try:
            with document_path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ReleaseIntegrityError(f"release document for {key!r} is corrupt: {exc}") from exc
        if document.get("level_view"):
            raise ReleaseIntegrityError(
                f"{key!r} holds a single level view, not a full release (use load_level)"
            )
        answers_path = directory / self.ANSWERS_NAME
        arrays: Dict[str, np.ndarray] = {}
        if answers_path.is_file():
            try:
                with np.load(answers_path) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            except Exception as exc:  # np.load raises zipfile/OS/value errors
                raise ReleaseIntegrityError(
                    f"answer arrays for {key!r} are corrupt: {exc}"
                ) from exc
        try:
            return MultiLevelRelease.from_dict(_restore_answers(document, arrays))
        except ReleaseIntegrityError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ReleaseIntegrityError(
                f"release document for {key!r} has an invalid structure: {exc}"
            ) from exc

    def delete(self, key: str) -> None:
        """Remove a stored release (no-op when absent)."""
        directory = self.path_for(key)
        if not directory.is_dir():
            return
        for name in (self.DOCUMENT_NAME, self.ANSWERS_NAME):
            path = directory / name
            if path.is_file():
                path.unlink()
        try:
            directory.rmdir()
        except OSError:  # pragma: no cover - directory had foreign files
            pass

    def get_or_create(
        self, key: str, builder: Callable[[], MultiLevelRelease]
    ) -> Tuple[MultiLevelRelease, bool]:
        """Load ``key`` if stored, else build, persist and return it.

        Returns ``(release, created)`` — ``created`` is ``False`` when the
        release was served from the store, which is how the evaluation
        harnesses resume interrupted experiments without re-spending budget.
        """
        if self.exists(key):
            return self.load(key), False
        release = builder()
        self.save(release, key=key)
        return release, True

    # ------------------------------------------------------------------
    # Single-level views
    # ------------------------------------------------------------------
    def save_level(self, view: LevelRelease, key: str) -> str:
        """Persist a single level release (e.g. one role's view)."""
        key = _slugify(key)
        directory = self.path_for(key)
        directory.mkdir(parents=True, exist_ok=True)
        document = {"level_view": True, "levels": {str(view.level): view.to_dict()}}
        document, arrays = _strip_answers(document)
        np.savez(directory / self.ANSWERS_NAME, **arrays)
        to_json_file(document, directory / self.DOCUMENT_NAME)
        return key

    def load_level(self, key: str) -> LevelRelease:
        """Inverse of :meth:`save_level`."""
        directory = self.path_for(key)
        document_path = directory / self.DOCUMENT_NAME
        if not document_path.is_file():
            raise ReleaseIntegrityError(f"no level view stored under key {key!r} in {self.root}")
        with document_path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
        if not document.get("level_view"):
            raise ReleaseIntegrityError(f"{key!r} holds a full release, not a level view")
        with np.load(directory / self.ANSWERS_NAME) as npz:
            arrays = {name: npz[name] for name in npz.files}
        document = _restore_answers(document, arrays)
        (level_doc,) = document["levels"].values()
        return LevelRelease.from_dict(level_doc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReleaseStore(root={str(self.root)!r}, releases={len(self.keys())})"
