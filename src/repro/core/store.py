"""Persistent storage for disclosure releases (JSON structure + npz answers).

A release is an artefact worth keeping: the privacy budget it consumed is
spent whether or not the noisy answers are saved, so a publisher should
persist every release and *serve* it rather than re-disclose.
:class:`ReleaseStore` provides that layer on top of a pluggable
:class:`StoreBackend`:

* :class:`DirectoryBackend` (the default, selected by constructing the store
  with a path) keeps one directory per release holding ``release.json`` — the
  full release document with the numeric answer vectors replaced by
  references — and ``answers.npz`` — the answer vectors as float64 arrays, so
  the round-trip is lossless down to the last bit.  A persisted ``index.json``
  at the store root is maintained incrementally on every ``put``/``delete``
  so :meth:`ReleaseStore.keys` is O(1) instead of an O(n) directory scan;
  legacy stores without an index (and stores whose directory contents drifted
  from the index) are healed by an automatic rebuild.
* :class:`MemoryBackend` keeps the same two artefacts per key in process
  memory — the natural backend for tests and for serving-layer caches — and
  produces byte-identical documents, so a release stored through either
  backend serialises identically.
* :class:`~repro.core.sqlite_backend.SqliteBackend` (selected by a
  ``.db``/``.sqlite`` path) keeps the same artefacts in one SQLite file,
  plus extracted catalog columns that make the store queryable by
  mechanism/epsilon/graph fingerprint (``repro query``,
  :mod:`repro.core.catalog`).

On top of the backend, :class:`ReleaseStore` optionally keeps an LRU
read-through cache of parsed releases (``cache_size``).  Every cache hit is
re-validated against the backend's cheap change fingerprint (file size +
mtime for directories, a revision counter in memory), so a release that was
rewritten or corrupted behind the store is never served stale from memory.

The store is wired through :meth:`repro.core.publisher.GraphPublisher.export_views`,
the ``repro disclose --store`` / ``repro report`` / ``repro serve`` CLI
commands, the read-only HTTP layer (:mod:`repro.serving`) and the evaluation
harnesses (:func:`~repro.evaluation.experiments.run_e6_baselines` resumes
from stored releases via :meth:`ReleaseStore.get_or_create`).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from contextlib import contextmanager

try:  # POSIX only; the index degrades to thread-level locking elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.release import LevelRelease, MultiLevelRelease
from repro.exceptions import ReleaseIntegrityError, ValidationError
from repro.utils.serialization import canonical_json_bytes

PathLike = Union[str, Path]

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _slugify(text: str) -> str:
    """Filesystem-safe store key fragment.

    When sanitisation is lossy (the text contained characters outside
    ``[A-Za-z0-9._-]``), a short digest of the *original* text is appended so
    two distinct raw keys can never collide onto one directory (``"exp 1"``
    vs ``"exp-1"``).
    """
    slug = _KEY_RE.sub("-", text.strip()).strip("-")
    if not slug or slug.strip(".") == "":
        # All-dot slugs ("." / "..") would escape the store root as paths.
        slug = "release"
    if slug != text:
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:8]
        slug = f"{slug}-{digest}"
    return slug


def _strip_answers(document: dict) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Split a release document into JSON structure and numeric arrays.

    Each level/query answer mapping is replaced by its label list plus the
    npz key holding the value vector.
    """
    arrays: Dict[str, np.ndarray] = {}
    levels = {}
    for level_key, level_doc in document["levels"].items():
        level_doc = dict(level_doc)
        answers = {}
        for query_name, values in level_doc["answers"].items():
            npz_key = f"{level_key}|{query_name}"
            labels = list(values.keys())
            arrays[npz_key] = np.asarray([values[label] for label in labels], dtype=float)
            answers[query_name] = {"labels": labels, "npz_key": npz_key}
        level_doc["answers"] = answers
        levels[level_key] = level_doc
    document = dict(document)
    document["levels"] = levels
    return document, arrays


def _restore_answers(document: dict, arrays: Dict[str, np.ndarray]) -> dict:
    """Inverse of :func:`_strip_answers`."""
    levels = {}
    for level_key, level_doc in document["levels"].items():
        level_doc = dict(level_doc)
        answers = {}
        for query_name, ref in level_doc["answers"].items():
            try:
                values = arrays[ref["npz_key"]]
                labels = ref["labels"]
            except (KeyError, TypeError) as exc:
                raise ReleaseIntegrityError(
                    f"answer arrays missing for level {level_key}, query {query_name!r}: {exc}"
                ) from exc
            if len(labels) != len(values):
                raise ReleaseIntegrityError(
                    f"label/value length mismatch for level {level_key}, query {query_name!r}"
                )
            answers[query_name] = {label: float(v) for label, v in zip(labels, values)}
        level_doc["answers"] = answers
        levels[level_key] = level_doc
    document = dict(document)
    document["levels"] = levels
    return document


def _tmp_suffix() -> str:
    """Per-writer temp-file suffix (``.<pid>-<thread>.tmp``).

    Keeping pid *and* thread id in the name means concurrent writers —
    whether threads in one process or separate processes — never collide on
    the temp path, so write-then-rename stays atomic under racing ``put``
    calls on the same key.  The ``.tmp`` tail keeps the files visible to
    :meth:`DirectoryBackend.delete`'s interrupted-write cleanup.
    """
    return f".{os.getpid()}-{threading.get_ident()}.tmp"


def _document_bytes(document: dict) -> bytes:
    """Canonical serialisation of a release document — identical across
    backends (and to the serving layer's responses) by construction."""
    return canonical_json_bytes(document)


def _answers_bytes(arrays: Dict[str, np.ndarray]) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class StoreBackend(ABC):
    """Byte-level I/O behind a :class:`ReleaseStore`.

    A backend stores, per (already slugified) key, exactly two artefacts: the
    release *document* (canonical JSON bytes) and the *answers* (npz bytes).
    Keeping the contract this small is what lets the same :class:`ReleaseStore`
    interface target a directory tree today and object storage or a key-value
    database tomorrow.
    """

    @abstractmethod
    def put(self, key: str, document: bytes, answers: bytes) -> None:
        """Store both artefacts under ``key`` (overwriting any previous pair)."""

    @abstractmethod
    def get_document(self, key: str) -> bytes:
        """The document bytes for ``key``; raises :class:`KeyError` when absent."""

    @abstractmethod
    def get_answers(self, key: str) -> Optional[bytes]:
        """The answers bytes for ``key``, or ``None`` when that artefact is absent."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether a document is stored under ``key``."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove both artefacts (no-op when absent)."""

    @abstractmethod
    def keys(self) -> List[str]:
        """All stored keys, sorted."""

    @abstractmethod
    def fingerprint(self, key: str) -> Optional[str]:
        """A cheap change-detection token for ``key`` (``None`` when absent).

        The token must change whenever the stored bytes may have changed; it
        is what the read-through cache re-checks before serving a release
        from memory, so computing it must not require reading the artefacts.
        """

    @abstractmethod
    def describe(self) -> str:
        """Human-readable location for error messages and ``repr``."""


class DirectoryBackend(StoreBackend):
    """One directory per release (``release.json`` + ``answers.npz``).

    A persisted ``index.json`` at the store root lists the stored keys and is
    maintained incrementally by :meth:`put`/:meth:`delete`, making
    :meth:`keys` a single O(1) file read on stores with thousands of
    releases.  Stores created before the index existed — or whose directory
    contents drifted from the index (releases copied in or removed by hand) —
    are handled by :meth:`rebuild_index` plus read-repair in
    :meth:`get_document`.
    """

    DOCUMENT_NAME = "release.json"
    ANSWERS_NAME = "answers.npz"
    INDEX_NAME = "index.json"
    INDEX_VERSION = 1

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self._index_lock = threading.Lock()
        self._known_keys: Optional[set] = None

    # -- paths ---------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Directory holding one release."""
        if not key or key.strip(".") == "" or "/" in key or "\\" in key:
            raise ValidationError(f"invalid store key {key!r}: would escape the store root")
        return self.root / key

    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_NAME

    # -- index maintenance --------------------------------------------
    def _scan_keys(self) -> List[str]:
        """O(n) directory scan — the rebuild path, not the hot path.

        A complete release is the *pair* of artefacts: ``put`` renames the
        answers into place before the document, so a directory holding a
        document without its sibling answers file is a torn pair (the
        answers were deleted behind the store) and must not be listed —
        loading it could only fail later.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / self.DOCUMENT_NAME).is_file()
            and (entry / self.ANSWERS_NAME).is_file()
        )

    def _write_index(self, keys: List[str]) -> None:
        """Atomically persist the key list (temp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"version": self.INDEX_VERSION, "keys": sorted(keys)}
        tmp_path = self.index_path.with_name(self.INDEX_NAME + _tmp_suffix())
        tmp_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp_path, self.index_path)

    def _read_index(self) -> Optional[List[str]]:
        """The indexed key list, or ``None`` when missing/corrupt (→ rebuild)."""
        try:
            payload = json.loads(self.index_path.read_text(encoding="utf-8"))
            keys = payload["keys"]
            if payload.get("version") != self.INDEX_VERSION or not isinstance(keys, list):
                return None
            return [str(key) for key in keys]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return None

    @contextmanager
    def _exclusive_index(self):
        """Serialise index read-modify-writes across threads *and* processes.

        The thread lock alone cannot see other processes: four process-pool
        workers saving releases through their own backend instances would
        each read ``index.json``, append their own key and rename their copy
        into place — the last rename wins and the other workers' entries are
        silently lost, so ``keys()`` under-reports releases that are all on
        disk.  An ``flock`` on a sidecar lock file (the index itself is
        replaced on every write, so it cannot carry the lock) makes the
        sequence atomic machine-wide.  Platforms without ``fcntl`` and
        read-only mounts fall back to thread-level locking only.
        """
        with self._index_lock:
            handle = None
            if fcntl is not None and self.root.is_dir():
                try:
                    handle = open(self.root / (self.INDEX_NAME + ".lock"), "a")
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                except OSError:  # pragma: no cover - read-only filesystem
                    if handle is not None:
                        handle.close()
                    handle = None
            try:
                yield
            finally:
                if handle is not None:
                    handle.close()  # closing the fd releases the flock

    def rebuild_index(self) -> List[str]:
        """Rescan the directory tree and rewrite the index; returns the keys.

        The recovery path for legacy (pre-index) stores and for drift —
        release directories copied in or deleted behind the store's back.
        """
        with self._exclusive_index():
            keys = self._scan_keys()
            self._known_keys = set(keys)
            if self.root.is_dir():
                self._write_index(keys)
            return keys

    def _index_add(self, key: str) -> None:
        with self._exclusive_index():
            keys = self._read_index()
            if keys is None:
                keys = self._scan_keys()
            elif key in keys:
                self._known_keys = set(keys)
                return
            else:
                keys.append(key)
            self._known_keys = set(keys)
            self._write_index(keys)

    def _index_discard(self, key: str) -> None:
        with self._exclusive_index():
            keys = self._read_index()
            if keys is None:
                keys = self._scan_keys()
            elif key not in keys:
                self._known_keys = set(keys)
                return
            else:
                keys.remove(key)
            self._known_keys = set(keys)
            self._write_index(keys)

    # -- StoreBackend --------------------------------------------------
    def put(self, key: str, document: bytes, answers: bytes) -> None:
        if key in (self.INDEX_NAME, self.INDEX_NAME + ".lock"):
            raise ValidationError(
                f"store key {key!r} is reserved for the key index"
            )
        directory = self.path_for(key)
        directory.mkdir(parents=True, exist_ok=True)
        # Write-then-rename per artefact so a concurrent reader (the serving
        # layer republishing under a live key) never sees a torn file.  The
        # answers land before the document: the document is what readers
        # check first, so it must never reference not-yet-renamed answers.
        # Temp names carry the writer's pid and thread id, so two writers
        # racing on the same key never share a temp file — each rename lands
        # a complete artefact and the last writer wins wholesale.
        for name, data in ((self.ANSWERS_NAME, answers), (self.DOCUMENT_NAME, document)):
            tmp_path = directory / (name + _tmp_suffix())
            tmp_path.write_bytes(data)
            os.replace(tmp_path, directory / name)
        self._index_add(key)

    def get_document(self, key: str) -> bytes:
        try:
            data = (self.path_for(key) / self.DOCUMENT_NAME).read_bytes()
        except OSError:
            # Read-repair: drop a dangling index entry for a vanished release.
            indexed = self._read_index()
            if indexed is not None and key in indexed:
                self._index_discard(key)
            raise KeyError(key) from None
        # Read-repair for a release copied in behind our back.  The in-memory
        # key set keeps this O(1) on the hot path: the index file is only
        # parsed once per process, not per read.
        known = self._known_keys
        if known is None:
            indexed = self._read_index()
            known = set(indexed) if indexed is not None else set(self._scan_keys())
            self._known_keys = known
        if key not in known:
            try:
                self._index_add(key)
            except OSError:  # read-only store: serve the bytes, skip the repair
                known.add(key)
        return data

    def get_answers(self, key: str) -> Optional[bytes]:
        path = self.path_for(key) / self.ANSWERS_NAME
        if not path.is_file():
            if (self.path_for(key) / self.DOCUMENT_NAME).is_file():
                # Torn pair: the document survived but its sibling answers
                # file was deleted out from under the store.  ``put`` writes
                # answers before the document, so this can never be a write
                # in flight — read-repair the index so keys() stops
                # advertising an entry load() can only fail on.  Document-only
                # reads (serving metadata/roles) keep working regardless.
                indexed = self._read_index()
                if indexed is not None and key in indexed:
                    self._index_discard(key)
            return None
        return path.read_bytes()

    def exists(self, key: str) -> bool:
        return (self.path_for(key) / self.DOCUMENT_NAME).is_file()

    def delete(self, key: str) -> None:
        directory = self.path_for(key)
        if directory.is_dir():
            for name in (self.DOCUMENT_NAME, self.ANSWERS_NAME):
                path = directory / name
                if path.is_file():
                    path.unlink()
            for leftover in directory.glob("*.tmp"):  # interrupted put()
                leftover.unlink()
            try:
                directory.rmdir()
            except OSError:  # pragma: no cover - directory had foreign files
                pass
        self._index_discard(key)

    def keys(self) -> List[str]:
        keys = self._read_index()
        if keys is None:
            # Legacy store (or corrupt index): scan, then persist the index
            # best-effort — listing must never materialise a directory for a
            # store that does not exist, nor fail on a read-only mount.
            keys = self._scan_keys()
            if self.root.is_dir():
                try:
                    with self._exclusive_index():
                        self._known_keys = set(keys)
                        self._write_index(keys)
                except OSError:  # pragma: no cover - read-only filesystem
                    pass
        return sorted(keys)

    def fingerprint(self, key: str) -> Optional[str]:
        parts = []
        for name in (self.DOCUMENT_NAME, self.ANSWERS_NAME):
            try:
                stat = (self.path_for(key) / name).stat()
            except OSError:
                parts.append("absent")
                continue
            parts.append(f"{stat.st_mtime_ns}:{stat.st_size}")
        if parts[0] == "absent":
            return None
        return "|".join(parts)

    def describe(self) -> str:
        return str(self.root)


class MemoryBackend(StoreBackend):
    """In-process backend: the same two artefacts per key, held as bytes.

    Used for tests and for serving deployments that pre-load a working set;
    because documents are serialised through the same canonical writer, a
    release stored here is byte-identical to its directory-backed twin.
    """

    def __init__(self):
        self._blobs: Dict[str, Tuple[bytes, bytes, int]] = {}
        self._revision = 0
        self._lock = threading.Lock()

    def put(self, key: str, document: bytes, answers: bytes) -> None:
        with self._lock:
            self._revision += 1
            self._blobs[key] = (document, answers, self._revision)

    def get_document(self, key: str) -> bytes:
        return self._blobs[key][0]

    def get_answers(self, key: str) -> Optional[bytes]:
        entry = self._blobs.get(key)
        return entry[1] if entry is not None else None

    def exists(self, key: str) -> bool:
        return key in self._blobs

    def delete(self, key: str) -> None:
        with self._lock:
            self._blobs.pop(key, None)

    def keys(self) -> List[str]:
        return sorted(self._blobs)

    def fingerprint(self, key: str) -> Optional[str]:
        entry = self._blobs.get(key)
        return f"rev:{entry[2]}" if entry is not None else None

    def describe(self) -> str:
        return "<in-memory store>"


class ReleaseStore:
    """Persisted multi-level releases, addressed by key, behind a backend.

    Parameters
    ----------
    root:
        Either a path or any :class:`StoreBackend` instance.  A path ending
        in ``.db``/``.sqlite``/``.sqlite3`` — or an existing file carrying
        the SQLite magic header — selects a
        :class:`~repro.core.sqlite_backend.SqliteBackend` (one queryable
        database file); every other path keeps the historical behaviour and
        creates a :class:`DirectoryBackend` for it.
    cache_size:
        When positive, keep up to this many parsed releases in an LRU
        read-through cache.  Hits are re-validated against the backend's
        change fingerprint before being served, so mutating or corrupting
        the stored artefacts behind the store is always detected.  The
        default (0) disables caching, preserving load-always-reads
        semantics; the serving layer enables it.
    clock:
        Optional zero-argument callable returning a created-at string,
        forwarded to backends that record one (currently the SQLite
        backend).  ``None`` (the default) stores no timestamp — backends
        never read the wall clock themselves.  Ignored when ``root`` is
        already a :class:`StoreBackend` instance.

    Examples
    --------
    >>> import tempfile
    >>> from repro import DisclosureConfig, MultiLevelDiscloser, generate_dblp_like
    >>> from repro.grouping.specialization import SpecializationConfig
    >>> graph = generate_dblp_like(num_authors=80, seed=0)
    >>> config = DisclosureConfig(specialization=SpecializationConfig(num_levels=3))
    >>> release = MultiLevelDiscloser(config, rng=1).disclose(graph)
    >>> store = ReleaseStore(tempfile.mkdtemp())
    >>> key = store.save(release)
    >>> store.load(key).levels() == release.levels()
    True
    """

    #: File names inside each release directory (directory backend).
    DOCUMENT_NAME = DirectoryBackend.DOCUMENT_NAME
    ANSWERS_NAME = DirectoryBackend.ANSWERS_NAME

    def __init__(
        self,
        root: Union[PathLike, StoreBackend],
        cache_size: int = 0,
        clock: Optional[Callable[[], str]] = None,
    ):
        if isinstance(root, StoreBackend):
            self.backend = root
        else:
            # Imported lazily: sqlite_backend imports this module (it
            # subclasses StoreBackend), so a module-level import would cycle.
            from repro.core.sqlite_backend import SqliteBackend, is_sqlite_path

            if is_sqlite_path(root):
                self.backend = SqliteBackend(root, clock=clock)
            else:
                self.backend = DirectoryBackend(root)
        self.root = getattr(self.backend, "root", None)
        self.cache_size = int(cache_size)
        self._cache: "OrderedDict[str, Tuple[Optional[str], MultiLevelRelease]]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_lookups = 0
        self._cache_hits = 0
        self._cache_misses = 0

    @classmethod
    def in_memory(cls, cache_size: int = 0) -> "ReleaseStore":
        """A store backed by process memory (tests, serving caches)."""
        return cls(MemoryBackend(), cache_size=cache_size)

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Directory holding one release (directory backend only)."""
        if not isinstance(self.backend, DirectoryBackend):
            raise TypeError(
                f"{type(self.backend).__name__} does not store releases on the filesystem"
            )
        return self.backend.path_for(_slugify(key))

    def exists(self, key: str) -> bool:
        """Whether a release is stored under ``key``."""
        return self.backend.exists(_slugify(key))

    def fingerprint(self, key: str) -> Optional[str]:
        """The backend's change token for ``key`` (``None`` when absent).

        The same token the read-through cache re-validates against; exposed
        so callers holding per-key state about stored artefacts (e.g. the
        serving layer's corrupt-artefact quarantine) can notice when the
        bytes behind a key changed.
        """
        return self.backend.fingerprint(_slugify(key))

    def keys(self) -> List[str]:
        """All stored release keys, sorted (O(1) on an indexed directory store)."""
        return self.backend.keys()

    def _default_key(self, release: MultiLevelRelease) -> str:
        digest = hashlib.sha256(
            json.dumps(release.to_dict(), sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()[:12]
        return f"{_slugify(release.dataset_name or 'release')}-{digest}"

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the read-through cache.

        ``hits + misses == lookups`` by construction: every cache-enabled
        load counts exactly one lookup resolving to exactly one hit or
        miss (a stale-fingerprint drop is that lookup's single miss, not
        an extra one).
        """
        with self._cache_lock:
            return {
                "lookups": self._cache_lookups,
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "size": len(self._cache),
                "max_size": self.cache_size,
            }

    def _cache_get(self, key: str) -> Optional[MultiLevelRelease]:
        if self.cache_size <= 0:
            return None
        with self._cache_lock:
            self._cache_lookups += 1
            entry = self._cache.get(key)
            if entry is None:
                self._cache_misses += 1
                return None
            fingerprint, release = entry
        # Integrity re-check outside the lock: the backend must report the
        # same change token as when the entry was cached.
        if fingerprint is None or self.backend.fingerprint(key) != fingerprint:
            with self._cache_lock:
                self._cache.pop(key, None)
                self._cache_misses += 1
            return None
        with self._cache_lock:
            if key in self._cache:
                self._cache.move_to_end(key)
            self._cache_hits += 1
        return release

    def _cache_put(self, key: str, fingerprint: Optional[str], release: MultiLevelRelease) -> None:
        if self.cache_size <= 0 or fingerprint is None:
            return
        with self._cache_lock:
            self._cache[key] = (fingerprint, release)
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def _cache_drop(self, key: str) -> None:
        with self._cache_lock:
            self._cache.pop(key, None)

    # ------------------------------------------------------------------
    # Multi-level releases
    # ------------------------------------------------------------------
    def save(self, release: MultiLevelRelease, key: Optional[str] = None) -> str:
        """Persist a release and return its key.

        ``key`` defaults to ``<dataset>-<content hash>``, so saving the same
        release twice is idempotent.
        """
        key = _slugify(key) if key is not None else self._default_key(release)
        document, arrays = _strip_answers(release.to_dict())
        self.backend.put(key, _document_bytes(document), _answers_bytes(arrays))
        self._cache_drop(key)
        return key

    def _load_document(self, key: str, slug: str) -> dict:
        try:
            raw = self.backend.get_document(slug)
        except KeyError:
            raise ReleaseIntegrityError(
                f"no release stored under key {key!r} in {self.backend.describe()} "
                f"(have: {self.keys()})"
            ) from None
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ReleaseIntegrityError(f"release document for {key!r} is corrupt: {exc}") from exc

    def _load_arrays(self, key: str, slug: str) -> Dict[str, np.ndarray]:
        raw = self.backend.get_answers(slug)
        if raw is None:
            return {}
        try:
            with np.load(io.BytesIO(raw)) as npz:
                return {name: npz[name] for name in npz.files}
        except Exception as exc:  # np.load raises zipfile/OS/value errors
            raise ReleaseIntegrityError(f"answer arrays for {key!r} are corrupt: {exc}") from exc

    def load_document(self, key: str) -> dict:
        """The stored release document alone — answers stay as npz references.

        The cheap path for metadata/provenance readers (e.g. the serving
        layer's release-metadata endpoint): the answer arrays are never read
        or parsed.  Raises :class:`ReleaseIntegrityError` exactly like
        :meth:`load`.
        """
        return self._load_document(key, _slugify(key))

    def load(self, key: str) -> MultiLevelRelease:
        """Load a release by key (read-through cached when ``cache_size > 0``).

        Raises :class:`ReleaseIntegrityError` when the key is absent, holds a
        level view rather than a full release, or its on-disk artefacts are
        corrupt — never a raw parse error, so callers (e.g. ``repro report``)
        have one exception type to handle.

        Cached releases are shared objects: treat the return value as
        read-only when caching is enabled.
        """
        slug = _slugify(key)
        cached = self._cache_get(slug)
        if cached is not None:
            return cached
        # Fingerprint before reading: if the artefacts change mid-read the
        # stale token makes the next hit re-validate and reload.
        fingerprint = self.backend.fingerprint(slug)
        document = self._load_document(key, slug)
        if document.get("level_view"):
            raise ReleaseIntegrityError(
                f"{key!r} holds a single level view, not a full release (use load_level)"
            )
        arrays = self._load_arrays(key, slug)
        try:
            release = MultiLevelRelease.from_dict(_restore_answers(document, arrays))
        except ReleaseIntegrityError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ReleaseIntegrityError(
                f"release document for {key!r} has an invalid structure: {exc}"
            ) from exc
        self._cache_put(slug, fingerprint, release)
        return release

    def delete(self, key: str) -> None:
        """Remove a stored release (no-op when absent)."""
        slug = _slugify(key)
        self.backend.delete(slug)
        self._cache_drop(slug)

    def get_or_create(
        self, key: str, builder: Callable[[], MultiLevelRelease]
    ) -> Tuple[MultiLevelRelease, bool]:
        """Load ``key`` if stored, else build, persist and return it.

        Returns ``(release, created)`` — ``created`` is ``False`` when the
        release was served from the store, which is how the evaluation
        harnesses resume interrupted experiments without re-spending budget.

        Tolerates concurrent writers racing on the same key: whoever
        persists first wins, and a writer that loses the race (the key
        appeared while its builder ran, or its save failed against an
        artefact that now exists) loads and returns the winner's release
        with ``created=False`` instead of erroring.
        """
        if self.exists(key):
            return self.load(key), False
        release = builder()
        if self.exists(key):
            # A concurrent get_or_create persisted while our builder ran;
            # serve the winner's artefact so every caller sees one release.
            return self.load(key), False
        try:
            self.save(release, key=key)
        except OSError:
            if self.exists(key):
                return self.load(key), False
            raise
        return release, True

    # ------------------------------------------------------------------
    # Single-level views
    # ------------------------------------------------------------------
    def save_level(self, view: LevelRelease, key: str) -> str:
        """Persist a single level release (e.g. one role's view)."""
        key = _slugify(key)
        document = {"level_view": True, "levels": {str(view.level): view.to_dict()}}
        document, arrays = _strip_answers(document)
        self.backend.put(key, _document_bytes(document), _answers_bytes(arrays))
        self._cache_drop(key)
        return key

    def load_level(self, key: str) -> LevelRelease:
        """Inverse of :meth:`save_level`."""
        slug = _slugify(key)
        try:
            raw = self.backend.get_document(slug)
        except KeyError:
            raise ReleaseIntegrityError(
                f"no level view stored under key {key!r} in {self.backend.describe()}"
            ) from None
        try:
            document = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ReleaseIntegrityError(
                f"level-view document for {key!r} is corrupt: {exc}"
            ) from exc
        if not document.get("level_view"):
            raise ReleaseIntegrityError(f"{key!r} holds a full release, not a level view")
        document = _restore_answers(document, self._load_arrays(key, slug))
        (level_doc,) = document["levels"].values()
        return LevelRelease.from_dict(level_doc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReleaseStore(backend={self.backend.describe()!r}, releases={len(self.keys())})"
