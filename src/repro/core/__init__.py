"""The paper's primary contribution: multi-level group-private disclosure.

The :class:`~repro.core.discloser.MultiLevelDiscloser` implements the
two-phase pipeline of Section III:

1. **Specialization** — partition the bipartite association graph into a
   multi-level group hierarchy with the Exponential Mechanism
   (:mod:`repro.grouping`);
2. **Noise injection** — for every information level, answer the configured
   query workload through a Gaussian (or alternative) mechanism whose noise
   is calibrated to the *group-level* sensitivity of that level, so the
   release satisfies :math:`\\epsilon_g`-group differential privacy at the
   corresponding granularity.

The output is a :class:`~repro.core.release.MultiLevelRelease`: one noisy
answer set per information level ``I_{L,i}``, each carrying its own
:class:`~repro.privacy.guarantees.GroupPrivacyGuarantee`, plus an
:class:`~repro.core.access.AccessPolicy` that hands users the level matching
their privilege.
"""

from repro.core.config import DisclosureConfig
from repro.core.common import build_mechanism, normalise_workload
from repro.core.discloser import MultiLevelDiscloser
from repro.core.pipeline import (
    AssembleStage,
    CalibrateStage,
    CompileStage,
    DisclosurePipeline,
    GroupCalibrateStage,
    LevelOutcome,
    LevelPlan,
    PerturbStage,
    PipelineContext,
    PipelineStage,
    SpecializeStage,
    UniformCalibrateStage,
    WorstCaseCalibrateStage,
)
from repro.core.release import LevelRelease, MultiLevelRelease
from repro.core.access import AccessPolicy, InformationLevel
from repro.core.certificate import PrivacyCertificate, verify_release
from repro.core.publisher import GraphPublisher
from repro.core.store import ReleaseStore

__all__ = [
    "DisclosureConfig",
    "MultiLevelDiscloser",
    "LevelRelease",
    "MultiLevelRelease",
    "AccessPolicy",
    "InformationLevel",
    "PrivacyCertificate",
    "verify_release",
    "GraphPublisher",
    "ReleaseStore",
    # staged pipeline
    "DisclosurePipeline",
    "PipelineContext",
    "PipelineStage",
    "SpecializeStage",
    "CompileStage",
    "CalibrateStage",
    "GroupCalibrateStage",
    "WorstCaseCalibrateStage",
    "UniformCalibrateStage",
    "PerturbStage",
    "AssembleStage",
    "LevelPlan",
    "LevelOutcome",
    "build_mechanism",
    "normalise_workload",
]
