"""Configuration of the multi-level disclosure pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.common import uses_l2_sensitivity as common_uses_l2_sensitivity
from repro.exceptions import ValidationError
from repro.execution import check_executor_name
from repro.grouping.specialization import SpecializationConfig
from repro.utils.validation import check_engine, check_fraction, check_positive, check_positive_int

#: Mechanisms supported by phase 2 (noise injection).
SUPPORTED_MECHANISMS: Tuple[str, ...] = (
    "gaussian",
    "analytic_gaussian",
    "laplace",
    "geometric",
)

#: How the per-level budget is interpreted.
SUPPORTED_BUDGET_MODES: Tuple[str, ...] = ("per_level", "total")


@dataclass
class DisclosureConfig:
    """All knobs of the two-phase disclosure pipeline.

    Parameters
    ----------
    epsilon_g:
        The group-privacy budget.  In ``per_level`` budget mode (the paper's
        setting, and the default) *each* information level is protected at
        ``epsilon_g`` independently; in ``total`` mode ``epsilon_g`` is an
        end-to-end budget split across levels by ``allocation``.
    delta:
        The ``delta`` of the Gaussian mechanism (ignored by the pure-DP
        mechanisms).
    mechanism:
        Phase-2 mechanism: ``"gaussian"`` (paper), ``"analytic_gaussian"``,
        ``"laplace"`` or ``"geometric"``.
    specialization:
        Phase-1 configuration (number of levels, fanouts, specialization
        budget).
    release_levels:
        Which hierarchy levels get a released answer.  Defaults to
        ``0 .. num_levels - 2`` — the paper's information levels
        ``I_{9,0} .. I_{9,7}`` for a 9-level hierarchy (the top level, the
        whole dataset, is never released as its own protection level because
        protecting "the entire dataset as one group" would require destroying
        the answer entirely).
    budget_mode:
        ``"per_level"`` or ``"total"`` (see ``epsilon_g``).
    allocation:
        Name of the allocation strategy used in ``total`` mode
        (``"uniform"``, ``"geometric"`` or ``"proportional"``).
    allocation_ratio:
        Ratio parameter of the geometric allocation.
    engine:
        ``"vectorized"`` (default) answers the workload through the compiled
        :class:`~repro.graphs.arrays.GraphArrays` view and draws each level's
        noise as one batched array; ``"reference"`` keeps the pure-Python
        per-query path.  The two engines produce identical true answers, and
        identical releases for the Gaussian/Laplace mechanism families under
        the same seed (see ``tests/test_engine_parity.py``).  Note the
        sensitivity/scoring fast paths are opportunistic — they key off
        ``graph.cached_arrays()`` — so a reference-engine run on a graph
        whose arrays were already compiled still uses the (value-identical)
        array kernels; benchmark the engines on separate graph objects.
    executor:
        Where the independent per-level perturbations run: ``"serial"``
        (default), ``"thread"`` or ``"process"``.  Every level draws its
        noise from its own :func:`~repro.utils.rng.derive_seedseq`-derived
        stream, so all three executors produce bit-identical releases for
        the same seed (``tests/test_engine_parity.py``).
    max_workers:
        Pool size for the thread/process executors (``None`` = CPU count).
    """

    epsilon_g: float = 1.0
    delta: float = 1e-5
    mechanism: str = "gaussian"
    specialization: SpecializationConfig = field(default_factory=SpecializationConfig)
    release_levels: Optional[Sequence[int]] = None
    budget_mode: str = "per_level"
    allocation: str = "uniform"
    allocation_ratio: float = 2.0
    engine: str = "vectorized"
    executor: str = "serial"
    max_workers: Optional[int] = None

    def __post_init__(self):
        check_positive(self.epsilon_g, "epsilon_g")
        check_fraction(self.delta, "delta")
        if self.mechanism not in SUPPORTED_MECHANISMS:
            raise ValidationError(
                f"mechanism must be one of {SUPPORTED_MECHANISMS}, got {self.mechanism!r}"
            )
        if self.budget_mode not in SUPPORTED_BUDGET_MODES:
            raise ValidationError(
                f"budget_mode must be one of {SUPPORTED_BUDGET_MODES}, got {self.budget_mode!r}"
            )
        check_engine(self.engine)
        check_executor_name(self.executor)
        if self.max_workers is not None:
            self.max_workers = check_positive_int(self.max_workers, "max_workers")
        if not isinstance(self.specialization, SpecializationConfig):
            raise ValidationError("specialization must be a SpecializationConfig")
        if self.release_levels is not None:
            levels = [int(level) for level in self.release_levels]
            if not levels:
                raise ValidationError("release_levels must not be empty when given")
            if any(level < 0 or level > self.specialization.num_levels for level in levels):
                raise ValidationError(
                    f"release_levels must lie in [0, {self.specialization.num_levels}], got {levels}"
                )
            self.release_levels = tuple(sorted(set(levels)))

    def resolved_release_levels(self) -> List[int]:
        """The levels that receive a released answer.

        Defaults to ``0 .. num_levels - 2`` (the paper's ``I_{L,0} .. I_{L,L-2}``).
        Levels without an individual level 0 (when
        ``specialization.include_individual_level`` is false) start at 1.
        """
        if self.release_levels is not None:
            return list(self.release_levels)
        lowest = 0 if self.specialization.include_individual_level else 1
        highest = max(lowest, self.specialization.num_levels - 2)
        return list(range(lowest, highest + 1))

    def uses_l2_sensitivity(self) -> bool:
        """Gaussian-family mechanisms calibrate to the L2 sensitivity."""
        return common_uses_l2_sensitivity(self.mechanism)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "epsilon_g": self.epsilon_g,
            "delta": self.delta,
            "mechanism": self.mechanism,
            "specialization": self.specialization.to_dict(),
            "release_levels": list(self.release_levels) if self.release_levels is not None else None,
            "budget_mode": self.budget_mode,
            "allocation": self.allocation,
            "allocation_ratio": self.allocation_ratio,
            "engine": self.engine,
            "executor": self.executor,
            "max_workers": self.max_workers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DisclosureConfig":
        """Rebuild from :meth:`to_dict` output — e.g. the ``config`` block of
        a stored release, which is how ``repro refresh`` reconstructs the
        original disclosure's configuration.  Unknown keys are ignored and
        missing keys fall back to the defaults, so configs stored by older
        versions still load."""
        kwargs = {
            key: data[key]
            for key in (
                "epsilon_g",
                "delta",
                "mechanism",
                "budget_mode",
                "allocation",
                "allocation_ratio",
                "engine",
                "executor",
                "max_workers",
            )
            if key in data
        }
        if data.get("specialization") is not None:
            kwargs["specialization"] = SpecializationConfig.from_dict(data["specialization"])
        if data.get("release_levels") is not None:
            kwargs["release_levels"] = tuple(data["release_levels"])
        return cls(**kwargs)

    @classmethod
    def paper_defaults(cls, epsilon_g: float = 1.0, delta: float = 1e-5) -> "DisclosureConfig":
        """The configuration used for Figure 1: 9 levels, 4-way splits, Gaussian noise."""
        return cls(
            epsilon_g=epsilon_g,
            delta=delta,
            mechanism="gaussian",
            specialization=SpecializationConfig(num_levels=9),
            budget_mode="per_level",
        )
