"""Safe-grouping release (syntactic, non-DP baseline).

Cormode et al. (VLDB 2008) anonymise bipartite association graphs by grouping
the nodes of each side into *safe groups* of at least ``k`` members such that
no two nodes of a group share an association, and then publishing the
group-to-group association counts.  This simplified reimplementation keeps
the two defining ingredients — minimum group size and the safety condition —
and publishes the exact (noise-free) group-pair counts, which makes it a
useful syntactic point of comparison: zero noise error, but only a
syntactic (k-anonymity-style) protection rather than a differential-privacy
guarantee.

Orchestration runs on the shared :class:`~repro.core.pipeline.DisclosurePipeline`
framework with baseline-specific stages: :class:`SafeGroupStage` groups the
two sides (independently, so they fan out through the executor — each side
draws its insertion order from its own derived stream, keeping serial and
parallel runs identical), :class:`PairCountStage` tabulates the group-pair
counts, and :class:`SafeAssembleStage` packages the release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import DisclosurePipeline, PipelineContext, PipelineStage
from repro.exceptions import GroupingError
from repro.execution import ExecutorSpec
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.partition import Group, Partition
from repro.core.common import DiscloseSeedStream
from repro.utils.rng import RandomState, derive_seedseq
from repro.utils.validation import check_engine, check_positive_int

Node = Hashable


@dataclass
class SafeGroupingRelease:
    """The artefact published by the safe-grouping baseline."""

    dataset_name: str
    left_partition: Partition
    right_partition: Partition
    group_pair_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    k: int = 3

    def total_associations(self) -> int:
        """Total association count recoverable from the published table (exact)."""
        return sum(self.group_pair_counts.values())

    def count_between(self, left_group_id: str, right_group_id: str) -> int:
        """Published count between two groups (0 when absent)."""
        return self.group_pair_counts.get((left_group_id, right_group_id), 0)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "dataset_name": self.dataset_name,
            "k": self.k,
            "left_partition": self.left_partition.to_dict(),
            "right_partition": self.right_partition.to_dict(),
            "group_pair_counts": [
                {"left": left, "right": right, "count": count}
                for (left, right), count in sorted(self.group_pair_counts.items())
            ],
        }


def _greedy_safe_groups(
    graph: BipartiteGraph,
    side: Side,
    k: int,
    max_attempts: int,
    seed: Optional[np.random.SeedSequence],
) -> List[List[Node]]:
    """Greedy assignment of one side's nodes into safety-respecting groups.

    Module-level (process-picklable) task function; the insertion order comes
    from the side's own derived stream, so the result is independent of
    whether the other side is grouped before, after or concurrently.
    """
    rng = np.random.default_rng(seed)
    nodes = list(graph.left_nodes() if side is Side.LEFT else graph.right_nodes())
    if not nodes:
        return []
    order = rng.permutation(len(nodes))
    nodes = [nodes[i] for i in order]
    num_groups = max(1, len(nodes) // k)
    groups: List[List[Node]] = [[] for _ in range(num_groups)]
    group_neighbourhoods: List[set] = [set() for _ in range(num_groups)]
    for node in nodes:
        neighbours = graph.neighbors(node)
        placed = False
        # Prefer the smallest group whose existing members share no neighbour.
        candidate_order = sorted(range(num_groups), key=lambda g: len(groups[g]))
        for attempt, g in enumerate(candidate_order):
            if attempt >= max_attempts:
                break
            if group_neighbourhoods[g].isdisjoint(neighbours):
                groups[g].append(node)
                group_neighbourhoods[g].update(neighbours)
                placed = True
                break
        if not placed:
            g = candidate_order[0]
            groups[g].append(node)
            group_neighbourhoods[g].update(neighbours)
    return [group for group in groups if group]


def _group_side(
    side: Side,
    graph: BipartiteGraph,
    k: int,
    max_attempts: int,
    seed: Optional[np.random.SeedSequence],
) -> Partition:
    """Group one side and wrap it into a partition (executor task)."""
    prefix = "SGL" if side is Side.LEFT else "SGR"
    side_name = "left" if side is Side.LEFT else "right"
    side_seed = derive_seedseq(seed, f"safe-{side_name}") if seed is not None else None
    groups = _greedy_safe_groups(graph, side, k, max_attempts, side_seed)
    return Partition(
        [
            Group(group_id=f"{prefix}{i}", members=frozenset(members), side=side_name)
            for i, members in enumerate(groups)
        ]
    )


class SafeGroupStage(PipelineStage):
    """Group both sides, fanning the two independent sides out per executor."""

    name = "safe-group"

    def __init__(self, k: int, max_attempts: int):
        self.k = k
        self.max_attempts = max_attempts

    def run(self, context: PipelineContext) -> None:
        task = partial(
            _group_side,
            graph=context.graph,
            k=self.k,
            max_attempts=self.max_attempts,
            seed=context.noise_seed,
        )
        left, right = context.executor.map(task, [Side.LEFT, Side.RIGHT])
        context.extras["left_partition"] = left
        context.extras["right_partition"] = right


class PairCountStage(PipelineStage):
    """Tabulate the exact group-pair association counts."""

    name = "pair-count"

    def run(self, context: PipelineContext) -> None:
        graph = context.graph
        left_partition: Partition = context.extras["left_partition"]
        right_partition: Partition = context.extras["right_partition"]
        counts: Dict[Tuple[str, str], int] = {}
        if context.engine == "vectorized":
            # One bincount over the compiled edge arrays replaces the
            # per-association Python loop.
            matrix = graph.arrays().cross_group_matrix(left_partition, right_partition)
            left_ids = left_partition.group_ids()
            right_ids = right_partition.group_ids()
            nonzero = matrix.nonzero()
            for i, j, value in zip(*nonzero, matrix[nonzero]):
                counts[(left_ids[i], right_ids[j])] = int(value)
        else:
            left_of = {node: group.group_id for group in left_partition.groups() for node in group.members}
            right_of = {node: group.group_id for group in right_partition.groups() for node in group.members}
            for left, right in graph.associations():
                key = (left_of[left], right_of[right])
                counts[key] = counts.get(key, 0) + 1
        context.extras["group_pair_counts"] = counts


class SafeAssembleStage(PipelineStage):
    """Package partitions and counts into a :class:`SafeGroupingRelease`."""

    name = "safe-assemble"

    def __init__(self, k: int):
        self.k = k

    def run(self, context: PipelineContext) -> None:
        context.extras["safe_release"] = SafeGroupingRelease(
            dataset_name=context.graph.name,
            left_partition=context.extras["left_partition"],
            right_partition=context.extras["right_partition"],
            group_pair_counts=context.extras["group_pair_counts"],
            k=self.k,
        )


class SafeGroupingDiscloser:
    """Greedy safe-grouping of both sides followed by exact count publication.

    Parameters
    ----------
    k:
        Minimum group size on each side.
    max_attempts:
        How many greedy passes to try before giving up on the safety
        condition for a node (it is then placed in the smallest group,
        sacrificing safety but never failing — matching the practical
        variants of the original algorithm).
    rng:
        Seed / generator driving the greedy insertion orders (each side
        derives its own stream).
    executor:
        Executor spec; the two sides are grouped concurrently when a
        parallel executor is configured.
    """

    def __init__(
        self,
        k: int = 3,
        max_attempts: int = 50,
        rng: RandomState = None,
        engine: str = "vectorized",
        executor: ExecutorSpec = None,
    ):
        self.k = check_positive_int(k, "k")
        self.max_attempts = check_positive_int(max_attempts, "max_attempts")
        self.engine = check_engine(engine)
        self.executor = executor
        self._seeds = DiscloseSeedStream(rng, "safe-grouping")

    def disclose(self, graph: BipartiteGraph) -> SafeGroupingRelease:
        """Group both sides and publish the exact group-pair counts."""
        if graph.num_nodes() == 0:
            raise GroupingError("cannot safe-group an empty graph")
        seed = self._seeds.next()
        pipeline = DisclosurePipeline(
            [
                SafeGroupStage(self.k, self.max_attempts),
                PairCountStage(),
                SafeAssembleStage(self.k),
            ]
        )
        context = PipelineContext(
            graph=graph, engine=self.engine, executor=self.executor, noise_seed=seed
        )
        return pipeline.run(context).extras["safe_release"]

    @staticmethod
    def safety_violations(graph: BipartiteGraph, release: SafeGroupingRelease) -> int:
        """Count node pairs within a group that share a neighbour (0 = fully safe)."""
        violations = 0
        for partition in (release.left_partition, release.right_partition):
            for group in partition.groups():
                members = [m for m in group.members if graph.has_node(m)]
                neighbour_sets = [graph.neighbors(m) for m in members]
                for i in range(len(members)):
                    for j in range(i + 1, len(members)):
                        if neighbour_sets[i] & neighbour_sets[j]:
                            violations += 1
        return violations
