"""Uniform-noise strawman: protect every level like the coarsest one.

A publisher that does not want per-level calibration could simply determine
the noise needed by the most demanding (coarsest) group level and apply that
same noise to every information level.  This trivially satisfies every
level's guarantee but wastes all the utility head-room at the fine-grained
levels — experiment E6 uses it to show that the *multi-level* aspect of the
paper's pipeline (different noise per level) is what delivers the privilege /
accuracy trade-off, not merely the group-aware sensitivity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.core.release import LevelRelease, MultiLevelRelease
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.mechanisms.base import PrivacyCost
from repro.mechanisms.gaussian import GaussianMechanism
from repro.privacy.guarantees import GroupPrivacyGuarantee, PrivacyUnit
from repro.privacy.sensitivity import group_count_sensitivity
from repro.queries.base import Query
from repro.queries.counts import TotalAssociationCountQuery
from repro.queries.workload import QueryWorkload, noisy_workload_answers
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_engine, check_fraction, check_positive


class UniformNoiseDiscloser:
    """Apply the coarsest level's Gaussian noise to every released level."""

    def __init__(
        self,
        epsilon_g: float = 1.0,
        delta: float = 1e-5,
        queries: Union[None, Query, Iterable[Query], QueryWorkload] = None,
        rng: RandomState = None,
        engine: str = "vectorized",
    ):
        self.epsilon_g = check_positive(epsilon_g, "epsilon_g")
        self.delta = check_fraction(delta, "delta")
        self.engine = check_engine(engine)
        if queries is None:
            self.workload = QueryWorkload([TotalAssociationCountQuery()], name="uniform-noise-baseline")
        elif isinstance(queries, QueryWorkload):
            self.workload = queries
        elif isinstance(queries, Query):
            self.workload = QueryWorkload([queries])
        else:
            self.workload = QueryWorkload(list(queries))
        self._rng = derive_rng(rng, "uniform-noise-baseline")

    def disclose(
        self,
        graph: BipartiteGraph,
        hierarchy: GroupHierarchy,
        levels: Optional[Iterable[int]] = None,
    ) -> MultiLevelRelease:
        """Release every level with noise calibrated to the coarsest level."""
        if levels is None:
            levels = [level for level in hierarchy.level_indices() if level < hierarchy.top_level]
        levels = sorted(levels)
        coarsest = max(levels)
        batched = self.engine == "vectorized"
        if batched:
            graph.arrays()  # compile once: sensitivity and evaluation share the view
        worst_sensitivity = group_count_sensitivity(graph, hierarchy.partition_at(coarsest))
        true_answers = (
            self.workload.evaluate_batch(graph) if batched else self.workload.evaluate(graph)
        )
        level_releases: Dict[int, LevelRelease] = {}
        for level in levels:
            partition = hierarchy.partition_at(level)
            mech = GaussianMechanism(self.epsilon_g, self.delta, worst_sensitivity, rng=self._rng)
            answers = noisy_workload_answers(mech, true_answers, batched=batched)
            guarantee = GroupPrivacyGuarantee(
                epsilon=self.epsilon_g,
                delta=self.delta,
                unit=PrivacyUnit.GROUP,
                description="uniform noise calibrated to the coarsest level",
                level=level,
                num_groups=partition.num_groups(),
                max_group_size=partition.max_group_size(),
            )
            level_releases[level] = LevelRelease(
                level=level,
                answers=answers,
                guarantee=guarantee,
                mechanism="gaussian",
                noise_scale=mech.noise_scale(),
                sensitivity=worst_sensitivity,
            )
        return MultiLevelRelease(
            dataset_name=graph.name,
            level_releases=level_releases,
            level_statistics=hierarchy.level_statistics(),
            specialization_cost=PrivacyCost(0.0, 0.0),
            config={"baseline": "uniform_noise", "epsilon_g": self.epsilon_g, "delta": self.delta},
        )
