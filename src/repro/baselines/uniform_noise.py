"""Uniform-noise strawman: protect every level like the coarsest one.

A publisher that does not want per-level calibration could simply determine
the noise needed by the most demanding (coarsest) group level and apply that
same noise to every information level.  This trivially satisfies every
level's guarantee but wastes all the utility head-room at the fine-grained
levels — experiment E6 uses it to show that the *multi-level* aspect of the
paper's pipeline (different noise per level) is what delivers the privilege /
accuracy trade-off, not merely the group-aware sensitivity.

The release runs on the shared staged pipeline with a
:class:`~repro.core.pipeline.UniformCalibrateStage` that measures the
coarsest level's sensitivity once and reuses it for every level.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.common import DiscloseSeedStream, WorkloadLike, normalise_workload
from repro.core.pipeline import (
    AssembleStage,
    CompileStage,
    DisclosurePipeline,
    PerturbStage,
    PipelineContext,
    UniformCalibrateStage,
)
from repro.core.release import MultiLevelRelease
from repro.execution import ExecutorSpec
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.utils.rng import RandomState
from repro.utils.validation import check_engine, check_fraction, check_positive


class UniformNoiseDiscloser:
    """Apply the coarsest level's Gaussian noise to every released level."""

    def __init__(
        self,
        epsilon_g: float = 1.0,
        delta: float = 1e-5,
        queries: WorkloadLike = None,
        rng: RandomState = None,
        engine: str = "vectorized",
        executor: ExecutorSpec = None,
    ):
        self.epsilon_g = check_positive(epsilon_g, "epsilon_g")
        self.delta = check_fraction(delta, "delta")
        self.engine = check_engine(engine)
        self.executor = executor
        self.workload = normalise_workload(queries, default_name="uniform-noise-baseline")
        self._noise_seeds = DiscloseSeedStream(rng, "uniform-noise-baseline")

    def disclose(
        self,
        graph: BipartiteGraph,
        hierarchy: GroupHierarchy,
        levels: Optional[Iterable[int]] = None,
        executor: ExecutorSpec = None,
    ) -> MultiLevelRelease:
        """Release every level with noise calibrated to the coarsest level."""
        noise_seed = self._noise_seeds.next()
        pipeline = DisclosurePipeline(
            [
                CompileStage(),
                UniformCalibrateStage(self.epsilon_g, self.delta, "gaussian"),
                PerturbStage(),
                AssembleStage(),
            ]
        )
        context = PipelineContext(
            graph=graph,
            engine=self.engine,
            workload=self.workload,
            hierarchy=hierarchy,
            executor=executor if executor is not None else self.executor,
            noise_seed=noise_seed,
            requested_levels=sorted(levels) if levels is not None else None,
            strict_levels=levels is not None,
            release_config={
                "baseline": "uniform_noise",
                "epsilon_g": self.epsilon_g,
                "delta": self.delta,
            },
        )
        return pipeline.run(context).release
