"""Naive group DP via the generic group-privacy lemma.

To guarantee ``epsilon_g`` for groups of up to ``k`` records, the lemma
requires running a record-level mechanism at ``epsilon_g / k``.  The naive
baseline bounds ``k`` crudely as ``max group size x maximum degree`` (every
node of the largest group could in principle carry the maximum number of
associations), instead of measuring how many associations the groups actually
touch as the paper's calibration does.  The resulting noise is never smaller
and is often one to two orders of magnitude larger, which experiment E6
quantifies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.core.release import LevelRelease, MultiLevelRelease
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.mechanisms.base import PrivacyCost
from repro.mechanisms.gaussian import GaussianMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.privacy.guarantees import GroupPrivacyGuarantee, PrivacyUnit
from repro.privacy.sensitivity import node_count_sensitivity, scale_sensitivity
from repro.queries.base import Query
from repro.queries.counts import TotalAssociationCountQuery
from repro.queries.workload import QueryWorkload, noisy_workload_answers
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_engine, check_fraction, check_positive


class NaiveGroupDPDiscloser:
    """Group-private release calibrated by the worst-case lemma bound.

    Parameters
    ----------
    epsilon_g, delta:
        Per-level group privacy parameters (same semantics as the paper's
        pipeline, so releases are directly comparable).
    mechanism:
        ``"gaussian"`` (default, comparable to the paper) or ``"laplace"``.
    queries:
        Workload; defaults to the total association count.
    rng:
        Seed / generator.
    """

    def __init__(
        self,
        epsilon_g: float = 1.0,
        delta: float = 1e-5,
        mechanism: str = "gaussian",
        queries: Union[None, Query, Iterable[Query], QueryWorkload] = None,
        rng: RandomState = None,
        engine: str = "vectorized",
    ):
        self.epsilon_g = check_positive(epsilon_g, "epsilon_g")
        self.delta = check_fraction(delta, "delta")
        if mechanism not in ("laplace", "gaussian"):
            raise ValueError(f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}")
        self.mechanism = mechanism
        self.engine = check_engine(engine)
        if queries is None:
            self.workload = QueryWorkload([TotalAssociationCountQuery()], name="naive-group-baseline")
        elif isinstance(queries, QueryWorkload):
            self.workload = queries
        elif isinstance(queries, Query):
            self.workload = QueryWorkload([queries])
        else:
            self.workload = QueryWorkload(list(queries))
        self._rng = derive_rng(rng, "naive-group-baseline")

    def level_sensitivity(self, graph: BipartiteGraph, hierarchy: GroupHierarchy, level: int) -> float:
        """The lemma-style worst-case sensitivity bound at one level."""
        partition = hierarchy.partition_at(level)
        max_group_size = max(1, partition.max_group_size())
        max_degree = max(1.0, node_count_sensitivity(graph))
        return scale_sensitivity(float(max_group_size), max_degree)

    def _make_mechanism(self, sensitivity: float):
        if self.mechanism == "gaussian":
            return GaussianMechanism(self.epsilon_g, self.delta, sensitivity, rng=self._rng)
        return LaplaceMechanism(self.epsilon_g, sensitivity, rng=self._rng)

    def disclose(
        self,
        graph: BipartiteGraph,
        hierarchy: GroupHierarchy,
        levels: Optional[Iterable[int]] = None,
    ) -> MultiLevelRelease:
        """Release every requested level with lemma-calibrated noise."""
        if levels is None:
            levels = [level for level in hierarchy.level_indices() if level < hierarchy.top_level]
        batched = self.engine == "vectorized"
        true_answers = (
            self.workload.evaluate_batch(graph) if batched else self.workload.evaluate(graph)
        )
        level_releases: Dict[int, LevelRelease] = {}
        for level in levels:
            partition = hierarchy.partition_at(level)
            sensitivity = self.level_sensitivity(graph, hierarchy, level)
            mech = self._make_mechanism(sensitivity)
            cost = mech.privacy_cost()
            answers = noisy_workload_answers(mech, true_answers, batched=batched)
            guarantee = GroupPrivacyGuarantee(
                epsilon=cost.epsilon,
                delta=cost.delta,
                unit=PrivacyUnit.GROUP,
                description="naive group DP via the worst-case group-privacy lemma bound",
                level=level,
                num_groups=partition.num_groups(),
                max_group_size=partition.max_group_size(),
            )
            level_releases[level] = LevelRelease(
                level=level,
                answers=answers,
                guarantee=guarantee,
                mechanism=self.mechanism,
                noise_scale=mech.noise_scale(),
                sensitivity=sensitivity,
            )
        return MultiLevelRelease(
            dataset_name=graph.name,
            level_releases=level_releases,
            level_statistics=hierarchy.level_statistics(),
            specialization_cost=PrivacyCost(0.0, 0.0),
            config={
                "baseline": "naive_group",
                "epsilon_g": self.epsilon_g,
                "delta": self.delta,
                "mechanism": self.mechanism,
            },
        )
