"""Naive group DP via the generic group-privacy lemma.

To guarantee ``epsilon_g`` for groups of up to ``k`` records, the lemma
requires running a record-level mechanism at ``epsilon_g / k``.  The naive
baseline bounds ``k`` crudely as ``max group size x maximum degree`` (every
node of the largest group could in principle carry the maximum number of
associations), instead of measuring how many associations the groups actually
touch as the paper's calibration does.  The resulting noise is never smaller
and is often one to two orders of magnitude larger, which experiment E6
quantifies.

The release runs on the shared staged pipeline
(:mod:`repro.core.pipeline`) — only the calibration stage differs: a
:class:`~repro.core.pipeline.WorstCaseCalibrateStage` swaps the paper's
measured group sensitivity for the lemma's worst-case bound.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.common import DiscloseSeedStream, WorkloadLike, normalise_workload
from repro.core.pipeline import (
    AssembleStage,
    CompileStage,
    DisclosurePipeline,
    PerturbStage,
    PipelineContext,
    WorstCaseCalibrateStage,
    worst_case_group_sensitivity,
)
from repro.core.release import MultiLevelRelease
from repro.execution import ExecutorSpec
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.utils.rng import RandomState
from repro.utils.validation import check_engine, check_fraction, check_positive


class NaiveGroupDPDiscloser:
    """Group-private release calibrated by the worst-case lemma bound.

    Parameters
    ----------
    epsilon_g, delta:
        Per-level group privacy parameters (same semantics as the paper's
        pipeline, so releases are directly comparable).
    mechanism:
        ``"gaussian"`` (default, comparable to the paper) or ``"laplace"``.
    queries:
        Workload; defaults to the total association count.
    rng:
        Seed / generator.
    executor:
        Executor spec for the per-level perturbations (default serial).
    """

    def __init__(
        self,
        epsilon_g: float = 1.0,
        delta: float = 1e-5,
        mechanism: str = "gaussian",
        queries: WorkloadLike = None,
        rng: RandomState = None,
        engine: str = "vectorized",
        executor: ExecutorSpec = None,
    ):
        self.epsilon_g = check_positive(epsilon_g, "epsilon_g")
        self.delta = check_fraction(delta, "delta")
        if mechanism not in ("laplace", "gaussian"):
            raise ValueError(f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}")
        self.mechanism = mechanism
        self.engine = check_engine(engine)
        self.executor = executor
        self.workload = normalise_workload(queries, default_name="naive-group-baseline")
        self._noise_seeds = DiscloseSeedStream(rng, "naive-group-baseline")

    def level_sensitivity(self, graph: BipartiteGraph, hierarchy: GroupHierarchy, level: int) -> float:
        """The lemma-style worst-case sensitivity bound at one level."""
        return worst_case_group_sensitivity(graph, hierarchy.partition_at(level))

    def disclose(
        self,
        graph: BipartiteGraph,
        hierarchy: GroupHierarchy,
        levels: Optional[Iterable[int]] = None,
        executor: ExecutorSpec = None,
    ) -> MultiLevelRelease:
        """Release every requested level with lemma-calibrated noise."""
        noise_seed = self._noise_seeds.next()
        pipeline = DisclosurePipeline(
            [
                CompileStage(),
                WorstCaseCalibrateStage(self.epsilon_g, self.delta, self.mechanism),
                PerturbStage(),
                AssembleStage(),
            ]
        )
        context = PipelineContext(
            graph=graph,
            engine=self.engine,
            workload=self.workload,
            hierarchy=hierarchy,
            executor=executor if executor is not None else self.executor,
            noise_seed=noise_seed,
            requested_levels=sorted(levels) if levels is not None else None,
            strict_levels=levels is not None,
            release_config={
                "baseline": "naive_group",
                "epsilon_g": self.epsilon_g,
                "delta": self.delta,
                "mechanism": self.mechanism,
            },
        )
        return pipeline.run(context).release
