"""Classical individual-DP release (no group awareness).

This is what a standard DP library would do with the paper's count query:
calibrate to the record-level sensitivity (1 for the association count) and
release a single noisy answer.  It is very accurate — and provides *no*
group-level guarantee beyond the weak one implied by the group-privacy lemma,
which the benchmark harness makes explicit by reporting the implied group
epsilon for each hierarchy level.

The single perturbation runs through the shared staged pipeline
(compile -> calibrate -> perturb) with a one-plan
:class:`IndividualCalibrateStage`; :meth:`as_multi_level_release` then
replicates that answer across the requested levels with the lemma-implied
guarantees.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.common import DiscloseSeedStream, WorkloadLike, build_mechanism, normalise_workload
from repro.core.pipeline import (
    CalibrateStage,
    CompileStage,
    DisclosurePipeline,
    LevelPlan,
    PerturbStage,
    PipelineContext,
)
from repro.core.release import LevelRelease, MultiLevelRelease
from repro.execution import ExecutorSpec
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.mechanisms.base import PrivacyCost
from repro.privacy.conversion import group_guarantee_from_individual
from repro.privacy.guarantees import IndividualPrivacyGuarantee, PrivacyUnit
from repro.utils.rng import RandomState
from repro.utils.validation import check_engine, check_fraction, check_positive


class IndividualCalibrateStage(CalibrateStage):
    """Record-level calibration: one plan covering the whole release."""

    name = "calibrate-individual"
    description = "classical record-level differential privacy"

    def __init__(self, epsilon_i: float, delta: float, mechanism: str):
        self.epsilon_i = epsilon_i
        self.delta = delta
        self.mechanism = mechanism

    def mechanism_for(self, context: PipelineContext) -> str:
        return self.mechanism

    def delta_for(self, context: PipelineContext) -> Optional[float]:
        return self.delta

    def sensitivity_for(self, context: PipelineContext, level: int) -> float:
        if self.mechanism == "gaussian":
            return context.workload.l2_sensitivity(context.graph, adjacency="individual")
        return context.workload.l1_sensitivity(context.graph, adjacency="individual")

    def epsilons_for(self, context: PipelineContext) -> Dict[int, float]:
        return {0: self.epsilon_i}

    def run(self, context: PipelineContext) -> None:
        # No hierarchy: a single pseudo-level plan carries the whole release.
        sensitivity = self.sensitivity_for(context, 0)
        context.sensitivities = {0: sensitivity}
        context.epsilons = self.epsilons_for(context)
        context.plans = [
            LevelPlan(
                level=0,
                epsilon=self.epsilon_i,
                sensitivity=sensitivity,
                mechanism=self.mechanism,
                delta=self.delta,
                noise_seed=context.level_seed(0),
                description=self.description,
            )
        ]


class IndividualDPDiscloser:
    """Release the workload once under record-level differential privacy.

    Parameters
    ----------
    epsilon_i:
        Individual (record-level) budget.
    delta:
        Gaussian delta (ignored for Laplace).
    mechanism:
        ``"laplace"`` (default) or ``"gaussian"``.
    queries:
        Workload; defaults to the paper's total association count.
    rng:
        Seed / generator.
    """

    def __init__(
        self,
        epsilon_i: float = 1.0,
        delta: float = 1e-5,
        mechanism: str = "laplace",
        queries: WorkloadLike = None,
        rng: RandomState = None,
        engine: str = "vectorized",
        executor: ExecutorSpec = None,
    ):
        self.epsilon_i = check_positive(epsilon_i, "epsilon_i")
        self.delta = check_fraction(delta, "delta")
        if mechanism not in ("laplace", "gaussian"):
            raise ValueError(f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}")
        self.mechanism = mechanism
        self.engine = check_engine(engine)
        self.executor = executor
        self.workload = normalise_workload(queries, default_name="individual-baseline")
        self._noise_seeds = DiscloseSeedStream(rng, "individual-dp-baseline")

    def disclose(self, graph: BipartiteGraph) -> Dict[str, Dict[str, float]]:
        """Return the noisy workload answers under individual DP."""
        noise_seed = self._noise_seeds.next()
        pipeline = DisclosurePipeline(
            [
                CompileStage(),
                IndividualCalibrateStage(self.epsilon_i, self.delta, self.mechanism),
                PerturbStage(),
            ]
        )
        context = PipelineContext(
            graph=graph,
            engine=self.engine,
            workload=self.workload,
            executor=self.executor,
            noise_seed=noise_seed,
        )
        return pipeline.run(context).outcomes[0].answers

    def guarantee(self) -> IndividualPrivacyGuarantee:
        """The record-level guarantee of :meth:`disclose`."""
        delta = self.delta if self.mechanism == "gaussian" else 0.0
        return IndividualPrivacyGuarantee(
            epsilon=self.epsilon_i,
            delta=delta,
            unit=PrivacyUnit.ASSOCIATION,
            description="classical record-level differential privacy",
        )

    def implied_group_epsilons(self, graph: BipartiteGraph, hierarchy: GroupHierarchy) -> Dict[int, float]:
        """Group epsilon implied by the group-privacy lemma, per hierarchy level.

        A record-level ``epsilon_i`` release degrades to ``k * epsilon_i`` for
        groups containing ``k`` records; here ``k`` is the largest number of
        associations incident to any group at the level.  These values are
        typically enormous for coarse levels, which is precisely the gap the
        paper's approach closes.
        """
        implied: Dict[int, float] = {}
        for level in hierarchy.level_indices():
            partition = hierarchy.partition_at(level)
            worst_records = max(
                (graph.associations_incident_to(group.members) for group in partition.groups()),
                default=1,
            )
            worst_records = max(1, worst_records)
            implied[level] = self.epsilon_i * worst_records
        return implied

    def as_multi_level_release(
        self, graph: BipartiteGraph, hierarchy: GroupHierarchy, levels: Optional[Iterable[int]] = None
    ) -> MultiLevelRelease:
        """Package the single individual-DP answer as a pseudo multi-level release.

        Every requested level receives the *same* noisy answers; the per-level
        guarantee records the (weak) group epsilon implied by the lemma so the
        comparison benchmarks can report both error and protection honestly.
        """
        answers = self.disclose(graph)
        implied = self.implied_group_epsilons(graph, hierarchy)
        if levels is None:
            levels = [level for level in hierarchy.level_indices() if level < hierarchy.top_level]
        level_releases: Dict[int, LevelRelease] = {}
        base_delta = self.delta if self.mechanism == "gaussian" else 0.0
        unit_scale = build_mechanism(
            self.mechanism, self.epsilon_i, 1.0, delta=self.delta
        ).noise_scale()
        for level in levels:
            guarantee = group_guarantee_from_individual(
                self.guarantee(), group_size=max(1, int(round(implied[level] / self.epsilon_i))), level=level
            )
            level_releases[level] = LevelRelease(
                level=level,
                answers={name: dict(values) for name, values in answers.items()},
                guarantee=guarantee,
                mechanism=self.mechanism,
                noise_scale=unit_scale,
                sensitivity=1.0,
            )
        return MultiLevelRelease(
            dataset_name=graph.name,
            level_releases=level_releases,
            level_statistics=hierarchy.level_statistics(),
            specialization_cost=PrivacyCost(0.0, 0.0),
            config={"baseline": "individual_dp", "epsilon_i": self.epsilon_i, "delta": base_delta},
        )
