"""Classical individual-DP release (no group awareness).

This is what a standard DP library would do with the paper's count query:
calibrate to the record-level sensitivity (1 for the association count) and
release a single noisy answer.  It is very accurate — and provides *no*
group-level guarantee beyond the weak one implied by the group-privacy lemma,
which the benchmark harness makes explicit by reporting the implied group
epsilon for each hierarchy level.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.core.release import LevelRelease, MultiLevelRelease
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.mechanisms.base import PrivacyCost
from repro.mechanisms.gaussian import GaussianMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.privacy.conversion import group_guarantee_from_individual
from repro.privacy.guarantees import IndividualPrivacyGuarantee, PrivacyUnit
from repro.queries.base import Query
from repro.queries.counts import TotalAssociationCountQuery
from repro.queries.workload import QueryWorkload, noisy_workload_answers
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_engine, check_fraction, check_positive


class IndividualDPDiscloser:
    """Release the workload once under record-level differential privacy.

    Parameters
    ----------
    epsilon_i:
        Individual (record-level) budget.
    delta:
        Gaussian delta (ignored for Laplace).
    mechanism:
        ``"laplace"`` (default) or ``"gaussian"``.
    queries:
        Workload; defaults to the paper's total association count.
    rng:
        Seed / generator.
    """

    def __init__(
        self,
        epsilon_i: float = 1.0,
        delta: float = 1e-5,
        mechanism: str = "laplace",
        queries: Union[None, Query, Iterable[Query], QueryWorkload] = None,
        rng: RandomState = None,
        engine: str = "vectorized",
    ):
        self.epsilon_i = check_positive(epsilon_i, "epsilon_i")
        self.delta = check_fraction(delta, "delta")
        if mechanism not in ("laplace", "gaussian"):
            raise ValueError(f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}")
        self.mechanism = mechanism
        self.engine = check_engine(engine)
        if queries is None:
            self.workload = QueryWorkload([TotalAssociationCountQuery()], name="individual-baseline")
        elif isinstance(queries, QueryWorkload):
            self.workload = queries
        elif isinstance(queries, Query):
            self.workload = QueryWorkload([queries])
        else:
            self.workload = QueryWorkload(list(queries))
        self._rng = derive_rng(rng, "individual-dp-baseline")

    def _make_mechanism(self, sensitivity: float):
        if self.mechanism == "gaussian":
            return GaussianMechanism(self.epsilon_i, self.delta, sensitivity, rng=self._rng)
        return LaplaceMechanism(self.epsilon_i, sensitivity, rng=self._rng)

    def disclose(self, graph: BipartiteGraph) -> Dict[str, Dict[str, float]]:
        """Return the noisy workload answers under individual DP."""
        sensitivity = (
            self.workload.l2_sensitivity(graph, adjacency="individual")
            if self.mechanism == "gaussian"
            else self.workload.l1_sensitivity(graph, adjacency="individual")
        )
        mech = self._make_mechanism(sensitivity)
        batched = self.engine == "vectorized"
        true_answers = (
            self.workload.evaluate_batch(graph) if batched else self.workload.evaluate(graph)
        )
        return noisy_workload_answers(mech, true_answers, batched=batched)

    def guarantee(self) -> IndividualPrivacyGuarantee:
        """The record-level guarantee of :meth:`disclose`."""
        delta = self.delta if self.mechanism == "gaussian" else 0.0
        return IndividualPrivacyGuarantee(
            epsilon=self.epsilon_i,
            delta=delta,
            unit=PrivacyUnit.ASSOCIATION,
            description="classical record-level differential privacy",
        )

    def implied_group_epsilons(self, graph: BipartiteGraph, hierarchy: GroupHierarchy) -> Dict[int, float]:
        """Group epsilon implied by the group-privacy lemma, per hierarchy level.

        A record-level ``epsilon_i`` release degrades to ``k * epsilon_i`` for
        groups containing ``k`` records; here ``k`` is the largest number of
        associations incident to any group at the level.  These values are
        typically enormous for coarse levels, which is precisely the gap the
        paper's approach closes.
        """
        implied: Dict[int, float] = {}
        for level in hierarchy.level_indices():
            partition = hierarchy.partition_at(level)
            worst_records = max(
                (graph.associations_incident_to(group.members) for group in partition.groups()),
                default=1,
            )
            worst_records = max(1, worst_records)
            implied[level] = self.epsilon_i * worst_records
        return implied

    def as_multi_level_release(
        self, graph: BipartiteGraph, hierarchy: GroupHierarchy, levels: Optional[Iterable[int]] = None
    ) -> MultiLevelRelease:
        """Package the single individual-DP answer as a pseudo multi-level release.

        Every requested level receives the *same* noisy answers; the per-level
        guarantee records the (weak) group epsilon implied by the lemma so the
        comparison benchmarks can report both error and protection honestly.
        """
        answers = self.disclose(graph)
        implied = self.implied_group_epsilons(graph, hierarchy)
        if levels is None:
            levels = [level for level in hierarchy.level_indices() if level < hierarchy.top_level]
        level_releases: Dict[int, LevelRelease] = {}
        base_delta = self.delta if self.mechanism == "gaussian" else 0.0
        for level in levels:
            partition = hierarchy.partition_at(level)
            guarantee = group_guarantee_from_individual(
                self.guarantee(), group_size=max(1, int(round(implied[level] / self.epsilon_i))), level=level
            )
            level_releases[level] = LevelRelease(
                level=level,
                answers={name: dict(values) for name, values in answers.items()},
                guarantee=guarantee,
                mechanism=self.mechanism,
                noise_scale=self._make_mechanism(1.0).noise_scale(),
                sensitivity=1.0,
            )
        return MultiLevelRelease(
            dataset_name=graph.name,
            level_releases=level_releases,
            level_statistics=hierarchy.level_statistics(),
            specialization_cost=PrivacyCost(0.0, 0.0),
            config={"baseline": "individual_dp", "epsilon_i": self.epsilon_i, "delta": base_delta},
        )
