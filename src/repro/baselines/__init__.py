"""Baseline disclosure algorithms the paper's approach is compared against.

None of these is the paper's contribution; they exist so the benchmark
harness (experiment E6 in DESIGN.md) can quantify what group-aware
calibration buys:

* :class:`~repro.baselines.individual_dp.IndividualDPDiscloser` — classical
  record-level DP release that ignores group privacy entirely;
* :class:`~repro.baselines.naive_group.NaiveGroupDPDiscloser` — obtains group
  privacy from the generic group-privacy lemma (scale the budget down by the
  worst-case group record count) instead of measuring the actual group
  sensitivity;
* :class:`~repro.baselines.safe_grouping.SafeGroupingDiscloser` — a
  syntactic, noise-free safe-grouping release in the spirit of Cormode et al.
  (VLDB 2008), included as the non-DP point of comparison;
* :class:`~repro.baselines.uniform_noise.UniformNoiseDiscloser` — a strawman
  that protects every level with the noise required by the coarsest level.
"""

from repro.baselines.individual_dp import IndividualDPDiscloser
from repro.baselines.naive_group import NaiveGroupDPDiscloser
from repro.baselines.safe_grouping import SafeGroupingDiscloser, SafeGroupingRelease
from repro.baselines.uniform_noise import UniformNoiseDiscloser

__all__ = [
    "IndividualDPDiscloser",
    "NaiveGroupDPDiscloser",
    "SafeGroupingDiscloser",
    "SafeGroupingRelease",
    "UniformNoiseDiscloser",
]
